"""Tests for fragment-data persistence and exact observable expectations."""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.circuits import Circuit, random_circuit
from repro.cutting import (
    bipartition,
    load_fragment_data,
    reconstruct_counts,
    reconstruct_distribution,
    save_fragment_data,
)
from repro.cutting.execution import exact_fragment_data, run_fragments
from repro.exceptions import ReconstructionError, SimulationError
from repro.linalg.paulis import PauliString
from repro.sim import simulate_statevector
from repro.sim.expectation import expectation_from_probs, expectation_of_observable


class TestFragmentArchive:
    def test_roundtrip_preserves_reconstruction(self, simple_cut_pair, tmp_path):
        qc, _, pair = simple_cut_pair
        data = run_fragments(pair, IdealBackend(), shots=2000, seed=5)
        p_before = reconstruct_distribution(data)
        path = save_fragment_data(data, tmp_path / "run.npz")
        loaded = load_fragment_data(path)
        p_after = reconstruct_distribution(loaded)
        np.testing.assert_allclose(p_after, p_before, atol=1e-12)

    def test_roundtrip_metadata(self, simple_cut_pair, tmp_path):
        _, spec, pair = simple_cut_pair
        data = run_fragments(pair, IdealBackend(), shots=500, seed=1)
        loaded = load_fragment_data(save_fragment_data(data, tmp_path / "x.npz"))
        assert loaded.shots_per_variant == 500
        assert loaded.pair.num_cuts == pair.num_cuts
        assert loaded.pair.up_out_original == pair.up_out_original
        assert loaded.pair.spec.cuts == spec.cuts
        assert set(loaded.upstream) == set(data.upstream)

    def test_loaded_circuits_match(self, simple_cut_pair, tmp_path):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        loaded = load_fragment_data(save_fragment_data(data, tmp_path / "e.npz"))
        assert loaded.pair.upstream == pair.upstream
        assert loaded.pair.downstream == pair.downstream

    def test_golden_analysis_on_loaded_data(self, tmp_path):
        from repro.core import detect_golden_bases, golden_ansatz

        spec = golden_ansatz(5, seed=13)
        pair = bipartition(spec.circuit, spec.cut_spec)
        data = run_fragments(
            pair, IdealBackend(), shots=10_000, inits=[("Z+",)], seed=2
        )
        loaded = load_fragment_data(save_fragment_data(data, tmp_path / "g.npz"))
        verdicts = {r.basis: r.is_golden for r in detect_golden_bases(loaded)}
        assert verdicts["Y"] is True

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ReconstructionError):
            load_fragment_data(path)


class TestReconstructCounts:
    def test_counts_scale(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        counts = reconstruct_counts(data, shots=10_000)
        assert abs(sum(counts.values()) - 10_000) <= len(counts)
        assert all(len(k) == 3 for k in counts)

    def test_counts_match_distribution(self, simple_cut_pair):
        qc, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        counts = reconstruct_counts(data, shots=100_000)
        truth = simulate_statevector(qc).probabilities()
        from repro.sim.sampler import counts_to_probs

        np.testing.assert_allclose(
            counts_to_probs(counts, 3), truth, atol=2e-4
        )


class TestExpectationModule:
    def test_diagonal_expectation(self):
        probs = np.array([0.25, 0.75])
        diag = np.array([1.0, -1.0])
        assert expectation_from_probs(probs, diag) == pytest.approx(-0.5)

    def test_shape_mismatch(self):
        with pytest.raises(SimulationError):
            expectation_from_probs(np.ones(2) / 2, np.ones(4))

    def test_complex_diagonal_rejected(self):
        with pytest.raises(SimulationError):
            expectation_from_probs(
                np.ones(2) / 2, np.array([1.0 + 1.0j, 0.0])
            )

    @pytest.mark.parametrize("label", ["Z", "X", "Y"])
    def test_single_qubit_eigenstate(self, label):
        """⟨P⟩ = +1 on P's own +1 eigenstate."""
        from repro.cutting import PREPARATION_STATES

        qc = Circuit(1)
        for g in PREPARATION_STATES[f"{label}+"]:
            qc.add_gate(g, (0,))
        val = expectation_of_observable(qc, PauliString.from_label(label))
        assert val == pytest.approx(1.0, abs=1e-10)

    def test_matches_dense_for_random_circuits(self, rng):
        labels = ["I", "X", "Y", "Z"]
        for seed in range(5):
            qc = random_circuit(3, 4, seed=seed + 500)
            lab = "".join(rng.choice(labels, 3))
            p = PauliString.from_label(lab)
            v = simulate_statevector(qc).vector()
            dense = float(np.real(np.vdot(v, p.to_matrix() @ v)))
            assert expectation_of_observable(qc, p) == pytest.approx(
                dense, abs=1e-9
            )

    def test_width_mismatch(self):
        with pytest.raises(SimulationError):
            expectation_of_observable(
                Circuit(2).h(0), PauliString.from_label("Z")
            )

    def test_phase_carries_through(self):
        qc = Circuit(1)  # |0>: <Z> = 1
        p = PauliString.from_label("Z", phase=-2.0)
        assert expectation_of_observable(qc, p) == pytest.approx(-2.0)
