"""Unit tests for noise channels, noise models and readout error."""

import numpy as np
import pytest

from repro.exceptions import NoiseError
from repro.linalg.channels import is_cptp
from repro.noise import (
    NoiseModel,
    ReadoutError,
    amplitude_damping,
    apply_readout_error,
    bit_flip,
    depolarizing,
    pauli_channel,
    phase_damping,
    phase_flip,
    thermal_relaxation,
    two_qubit_depolarizing,
)
from repro.sim import DensityMatrix


class TestChannels:
    @pytest.mark.parametrize(
        "factory,args",
        [
            (depolarizing, (0.1,)),
            (two_qubit_depolarizing, (0.05,)),
            (amplitude_damping, (0.2,)),
            (phase_damping, (0.3,)),
            (bit_flip, (0.1,)),
            (phase_flip, (0.1,)),
            (pauli_channel, (0.05, 0.02, 0.01)),
            (thermal_relaxation, (50e-6, 70e-6, 1e-6)),
        ],
    )
    def test_cptp(self, factory, args):
        assert is_cptp(factory(*args).operators)

    def test_depolarizing_contracts_bloch(self):
        dm = DensityMatrix(1, np.array([1, 1]) / np.sqrt(2))
        dm.apply_channel(depolarizing(0.4), (0,))
        from repro.linalg.states import bloch_vector

        b = bloch_vector(dm.matrix())
        np.testing.assert_allclose(b, [0.6, 0, 0], atol=1e-12)

    def test_bit_flip_action(self):
        dm = DensityMatrix(1)
        dm.apply_channel(bit_flip(0.25), (0,))
        np.testing.assert_allclose(dm.probabilities(), [0.75, 0.25], atol=1e-12)

    def test_phase_flip_preserves_populations(self):
        dm = DensityMatrix(1, np.array([0.6, 0.8]))
        dm.apply_channel(phase_flip(0.3), (0,))
        np.testing.assert_allclose(dm.probabilities(), [0.36, 0.64], atol=1e-12)

    def test_phase_damping_kills_coherence(self):
        dm = DensityMatrix(1, np.array([1, 1]) / np.sqrt(2))
        dm.apply_channel(phase_damping(1.0), (0,))
        assert abs(dm.matrix()[0, 1]) < 1e-12

    def test_invalid_probability(self):
        with pytest.raises(NoiseError):
            amplitude_damping(1.5)
        with pytest.raises(NoiseError):
            depolarizing(-0.1)
        with pytest.raises(NoiseError):
            pauli_channel(0.6, 0.5, 0.2)

    def test_thermal_relaxation_t2_bound(self):
        with pytest.raises(NoiseError):
            thermal_relaxation(10e-6, 30e-6, 1e-6)

    def test_thermal_relaxation_coherence_decay(self):
        t1, t2, t = 50e-6, 40e-6, 5e-6
        dm = DensityMatrix(1, np.array([1, 1]) / np.sqrt(2))
        dm.apply_channel(thermal_relaxation(t1, t2, t), (0,))
        coherence = abs(dm.matrix()[0, 1])
        np.testing.assert_allclose(coherence, 0.5 * np.exp(-t / t2), atol=1e-10)

    def test_two_qubit_depolarizing_mixes(self):
        dm = DensityMatrix(2)
        dm.apply_channel(two_qubit_depolarizing(1.0), (0, 1))
        np.testing.assert_allclose(dm.matrix(), np.eye(4) / 4, atol=1e-12)


class TestNoiseModel:
    def test_rule_matching(self):
        nm = NoiseModel().add_gate_noise(["cx"], two_qubit_depolarizing(0.1))
        hits = list(nm.channels_for("cx", (0, 1)))
        assert len(hits) == 1 and hits[0][1] == (0, 1)
        assert list(nm.channels_for("h", (0,))) == []

    def test_wildcard(self):
        nm = NoiseModel().add_gate_noise(["*"], depolarizing(0.01))
        assert len(list(nm.channels_for("anything", (2,)))) == 1

    def test_one_qubit_channel_fans_out_on_2q_gate(self):
        nm = NoiseModel().add_gate_noise(["cx"], depolarizing(0.01))
        hits = list(nm.channels_for("cx", (0, 1)))
        assert [h[1] for h in hits] == [(0,), (1,)]

    def test_qubit_restriction(self):
        nm = NoiseModel().add_gate_noise(["h"], depolarizing(0.01), qubits=(2,))
        assert list(nm.channels_for("h", (1,))) == []
        assert len(list(nm.channels_for("h", (2,)))) == 1

    def test_arity_mismatch_raises(self):
        nm = NoiseModel().add_gate_noise(["ccx"], two_qubit_depolarizing(0.1))
        with pytest.raises(NoiseError):
            list(nm.channels_for("ccx", (0, 1, 2)))

    def test_is_trivial(self):
        assert NoiseModel().is_trivial()
        assert not NoiseModel().add_gate_noise(["x"], depolarizing(0.1)).is_trivial()


class TestReadoutError:
    def test_confusion_matrix_columns_stochastic(self):
        m = ReadoutError(0.02, 0.05).matrix()
        np.testing.assert_allclose(m.sum(axis=0), [1.0, 1.0])

    def test_apply_to_deterministic(self):
        probs = np.array([1.0, 0.0])
        out = apply_readout_error(probs, {0: ReadoutError(0.1, 0.0)}, 1)
        np.testing.assert_allclose(out, [0.9, 0.1])

    def test_apply_on_selected_qubit(self):
        probs = np.zeros(4)
        probs[0] = 1.0
        out = apply_readout_error(probs, {1: ReadoutError(0.2, 0.0)}, 2)
        np.testing.assert_allclose(out, [0.8, 0.0, 0.2, 0.0])

    def test_no_errors_identity(self, rng):
        p = rng.random(8)
        p /= p.sum()
        np.testing.assert_allclose(apply_readout_error(p, {}, 3), p)

    def test_mass_preserved(self, rng):
        p = rng.random(8)
        p /= p.sum()
        errors = {q: ReadoutError(0.03, 0.07) for q in range(3)}
        out = apply_readout_error(p, errors, 3)
        assert np.isclose(out.sum(), 1.0)
        assert np.all(out >= 0)

    def test_invalid_probability(self):
        with pytest.raises(NoiseError):
            ReadoutError(1.2, 0.0)

    def test_unknown_qubit(self):
        with pytest.raises(NoiseError):
            apply_readout_error(np.array([1.0, 0]), {3: ReadoutError(0.1, 0.1)}, 1)
