"""Tests for the circuit DAG and the circuit library/generators."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    CircuitDag,
    ghz_circuit,
    hardware_efficient_ansatz,
    qaoa_maxcut_circuit,
    qft_circuit,
    random_circuit,
    random_real_circuit,
    random_rx_layer,
    real_amplitudes_ansatz,
)
from repro.exceptions import CutError
from repro.sim import circuit_unitary, simulate_statevector


class TestDag:
    def test_edges_follow_wires(self):
        qc = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        dag = CircuitDag(qc)
        assert dag.graph.has_edge(0, 1)
        assert dag.graph.has_edge(1, 2)
        assert not dag.graph.has_edge(0, 2)

    def test_parallel_gates_independent(self):
        qc = Circuit(2).h(0).h(1)
        dag = CircuitDag(qc)
        assert dag.graph.number_of_edges() == 0

    def test_edge_wire_labels(self):
        qc = Circuit(2).cx(0, 1).cx(0, 1)
        dag = CircuitDag(qc)
        assert dag.graph[0][1]["wires"] == {0, 1}

    def test_topological_order_valid(self):
        qc = random_circuit(4, 5, seed=1)
        dag = CircuitDag(qc)
        order = dag.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for u, v in dag.graph.edges:
            assert pos[u] < pos[v]

    def test_layers_partition_nodes(self):
        qc = random_circuit(4, 4, seed=2)
        dag = CircuitDag(qc)
        layers = dag.layers()
        flat = [n for layer in layers for n in layer]
        assert sorted(flat) == list(range(len(qc)))

    def test_layers_are_antichains(self):
        qc = random_circuit(3, 4, seed=3)
        dag = CircuitDag(qc)
        for layer in dag.layers():
            for a in layer:
                for b in layer:
                    if a != b:
                        assert not nx.has_path(dag.graph, a, b)

    def test_wire_segments(self):
        qc = Circuit(2).h(0).cx(0, 1).x(0)
        dag = CircuitDag(qc)
        assert dag.wire_segments(0) == [0, 1, 2]
        assert dag.wire_segments(1) == [1]

    def test_downstream_of_cut(self):
        qc = Circuit(3).h(0).cx(0, 1).cx(1, 2).x(0)
        dag = CircuitDag(qc)
        down = dag.downstream_of_cut(1, 1)
        assert down == {2}

    def test_cut_after_last_gate_raises(self):
        qc = Circuit(2).h(0).cx(0, 1)
        dag = CircuitDag(qc)
        with pytest.raises(CutError):
            dag.downstream_of_cut(1, 1)

    def test_cut_on_wrong_wire_raises(self):
        qc = Circuit(2).h(0).cx(0, 1)
        dag = CircuitDag(qc)
        with pytest.raises(CutError):
            dag.downstream_of_cut(1, 0)

    def test_upstream_closure(self):
        qc = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        dag = CircuitDag(qc)
        assert dag.upstream_closure([2]) == {0, 1, 2}


class TestGenerators:
    def test_random_circuit_deterministic(self):
        a = random_circuit(4, 3, seed=5)
        b = random_circuit(4, 3, seed=5)
        assert a == b

    def test_random_circuit_acts_on_all_wires(self):
        qc = random_circuit(5, 2, seed=1)
        assert qc.qubits_used() == tuple(range(5))

    def test_random_real_is_real(self):
        for seed in range(5):
            assert random_real_circuit(4, 4, seed=seed).is_real()

    def test_rx_layer_angles_in_range(self):
        qc = random_rx_layer(6, seed=2)
        assert len(qc) == 6
        assert all(0.0 <= p <= 6.28 for p in qc.parameters())

    def test_rx_layer_subset(self):
        qc = random_rx_layer(5, seed=3, qubits=[1, 3])
        assert qc.qubits_used() == (1, 3)

    def test_two_qubit_prob_extremes(self):
        only_1q = random_circuit(4, 3, seed=1, two_qubit_prob=0.0)
        assert only_1q.num_two_qubit_gates() == 0
        mostly_2q = random_circuit(4, 3, seed=1, two_qubit_prob=1.0)
        assert mostly_2q.num_two_qubit_gates() >= 3


class TestLibrary:
    def test_ghz(self):
        probs = simulate_statevector(ghz_circuit(5)).probabilities()
        assert np.isclose(probs[0], 0.5) and np.isclose(probs[31], 0.5)

    def test_qft_matches_dft_matrix(self):
        """QFT unitary == DFT matrix (with the swap network)."""
        n = 3
        u = circuit_unitary(qft_circuit(n, swaps=True))
        dim = 1 << n
        omega = np.exp(2j * math.pi / dim)
        dft = np.array(
            [[omega ** (j * k) / math.sqrt(dim) for k in range(dim)] for j in range(dim)]
        )
        assert np.allclose(u, dft, atol=1e-10)

    def test_real_amplitudes_is_real(self):
        qc = real_amplitudes_ansatz(4, reps=2, seed=1)
        assert qc.is_real()

    def test_hea_param_count(self):
        qc = hardware_efficient_ansatz(3, reps=2, seed=0)
        assert len(qc.parameters()) == 2 * 3 * 3

    def test_hea_explicit_params(self):
        n, reps = 2, 1
        params = [0.1] * (2 * n * (reps + 1))
        qc = hardware_efficient_ansatz(n, reps, params=params)
        assert qc.parameters() == params
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(n, reps, params=[0.1])

    def test_qaoa_structure(self):
        g = nx.cycle_graph(4)
        qc = qaoa_maxcut_circuit(g, gammas=[0.4], betas=[0.8])
        ops = qc.count_ops()
        assert ops["h"] == 4 and ops["rzz"] == 4 and ops["rx"] == 4

    def test_qaoa_validation(self):
        g = nx.cycle_graph(3)
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(g, gammas=[0.1], betas=[0.1, 0.2])
        bad = nx.Graph()
        bad.add_edge(1, 5)
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(bad, gammas=[0.1], betas=[0.1])

    def test_qaoa_uniform_at_zero_angles(self):
        g = nx.path_graph(3)
        qc = qaoa_maxcut_circuit(g, gammas=[0.0], betas=[0.0])
        probs = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(probs, np.full(8, 1 / 8), atol=1e-10)
