"""Tests for sequential detection and the variance model."""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.core import golden_ansatz
from repro.core.adaptive import merge_fragment_data, sequential_detect
from repro.cutting import bipartition
from repro.cutting.execution import exact_fragment_data, run_fragments
from repro.cutting.reconstruction import reconstruct_distribution
from repro.cutting.variance import predicted_stddev_tv, reconstruction_variance
from repro.exceptions import DetectionError
from repro.sim import simulate_statevector

from tests.helpers import two_block_circuit


@pytest.fixture(scope="module")
def golden_pair():
    spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=71)
    return spec, bipartition(spec.circuit, spec.cut_spec)


@pytest.fixture(scope="module")
def generic_pair():
    # seed 307 has strong analytic deviations (> 0.4) in all three bases,
    # so every candidate is rejected within the first detection stage
    qc, spec = two_block_circuit(3, [0, 1], [1, 2], depth=6, seed=307)
    return qc, bipartition(qc, spec)


class TestMerge:
    def test_merge_equals_single_run_statistics(self, golden_pair):
        _, pair = golden_pair
        a = run_fragments(pair, IdealBackend(), shots=1000, seed=1)
        b = run_fragments(pair, IdealBackend(), shots=3000, seed=2)
        m = merge_fragment_data(a, b)
        assert m.shots_per_variant == 4000
        for key in a.upstream:
            expected = (1000 * a.upstream[key] + 3000 * b.upstream[key]) / 4000
            np.testing.assert_allclose(m.upstream[key], expected)

    def test_merged_mass_normalised(self, golden_pair):
        _, pair = golden_pair
        a = run_fragments(pair, IdealBackend(), shots=500, seed=3)
        b = run_fragments(pair, IdealBackend(), shots=500, seed=4)
        m = merge_fragment_data(a, b)
        for arr in m.upstream.values():
            assert np.isclose(arr.sum(), 1.0)

    def test_merge_rejects_different_pairs(self, golden_pair, generic_pair):
        _, pair1 = golden_pair
        _, pair2 = generic_pair
        a = run_fragments(pair1, IdealBackend(), shots=100, seed=1)
        b = run_fragments(pair2, IdealBackend(), shots=100, seed=1)
        with pytest.raises(DetectionError):
            merge_fragment_data(a, b)

    def test_merge_rejects_exact_data(self, golden_pair):
        _, pair = golden_pair
        a = run_fragments(pair, IdealBackend(), shots=100, seed=1)
        b = exact_fragment_data(pair)
        with pytest.raises(DetectionError):
            merge_fragment_data(a, b)


class TestSequentialDetect:
    def test_finds_golden_bases_matching_analytic_truth(self, golden_pair):
        """Every accepted basis must be analytically golden, and Y (the
        designed one) must be among them.  (This seed's draw happens to be
        X-golden too — the detector should agree with the exact finder.)"""
        from repro.core import find_golden_bases_analytic

        _, pair = golden_pair
        res = sequential_detect(pair, IdealBackend(), seed=5)
        found = res.golden_map()
        exact = find_golden_bases_analytic(pair)
        assert "Y" in found.get(0, [])
        for k, bases in found.items():
            assert set(bases) <= set(exact[k])

    def test_generic_circuit_stops_early(self, generic_pair):
        """All candidates rejected in stage 0 -> later stages skipped."""
        _, pair = generic_pair
        res = sequential_detect(
            pair, IdealBackend(), stage_shots=(4000, 16000, 64000), seed=6
        )
        assert not res.golden_map()
        assert len(res.stages) == 1
        assert res.shots_spent == 4000 * 3  # one stage, three settings

    def test_rejections_happen_in_early_stages(self, golden_pair):
        _, pair = golden_pair
        res = sequential_detect(
            pair, IdealBackend(), stage_shots=(2000, 8000), seed=7
        )
        stage0_rejected = res.stages[0].rejected
        # X and Z are informative for this ansatz: rejected immediately
        assert ((0, "X") in stage0_rejected) or ((0, "Z") in stage0_rejected)

    def test_budget_accounting(self, golden_pair):
        _, pair = golden_pair
        res = sequential_detect(
            pair, IdealBackend(), stage_shots=(1000, 2000), seed=8
        )
        assert res.shots_spent == (1000 + 2000) * 3
        assert res.data.shots_per_variant == 3000

    def test_invalid_stages(self, golden_pair):
        _, pair = golden_pair
        with pytest.raises(DetectionError):
            sequential_detect(pair, IdealBackend(), stage_shots=())
        with pytest.raises(DetectionError):
            sequential_detect(pair, IdealBackend(), stage_shots=(0,))


class TestVariance:
    def test_exact_data_zero_variance(self, golden_pair):
        _, pair = golden_pair
        var = reconstruction_variance(exact_fragment_data(pair))
        np.testing.assert_allclose(var, 0.0)

    def test_variance_scales_inversely_with_shots(self, golden_pair):
        _, pair = golden_pair
        v1 = reconstruction_variance(
            run_fragments(pair, IdealBackend(), shots=500, seed=9)
        )
        v2 = reconstruction_variance(
            run_fragments(pair, IdealBackend(), shots=50_000, seed=9)
        )
        assert v2.sum() < v1.sum() / 10

    def test_prediction_tracks_empirical_variance(self, golden_pair):
        """Delta-method prediction within a small factor of truth."""
        spec, pair = golden_pair
        shots = 2000
        trials = 40
        samples = []
        predictions = []
        for t in range(trials):
            data = run_fragments(pair, IdealBackend(), shots=shots, seed=100 + t)
            samples.append(reconstruct_distribution(data, postprocess="raw"))
            if t < 5:
                predictions.append(reconstruction_variance(data))
        empirical = np.var(np.array(samples), axis=0, ddof=1)
        predicted = np.mean(predictions, axis=0)
        # compare total variance mass: same order of magnitude
        ratio = predicted.sum() / max(empirical.sum(), 1e-12)
        assert 0.3 < ratio < 3.0, ratio

    def test_golden_variance_not_larger(self, golden_pair):
        """Dropping golden rows cannot inflate the variance estimate."""
        from repro.core.neglect import (
            reduced_bases,
            reduced_init_tuples,
            reduced_setting_tuples,
        )

        _, pair = golden_pair
        golden = {0: "Y"}
        full = run_fragments(pair, IdealBackend(), shots=5000, seed=11)
        red = run_fragments(
            pair, IdealBackend(), shots=5000, seed=11,
            settings=reduced_setting_tuples(1, golden),
            inits=reduced_init_tuples(1, golden),
        )
        v_full = reconstruction_variance(full).sum()
        v_red = reconstruction_variance(red, bases=reduced_bases(1, golden)).sum()
        assert v_red <= v_full * 1.05

    def test_predicted_stddev_tv_positive(self, golden_pair):
        _, pair = golden_pair
        data = run_fragments(pair, IdealBackend(), shots=1000, seed=12)
        assert predicted_stddev_tv(data) > 0.0
