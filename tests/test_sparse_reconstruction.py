"""Sparse / top-k tree reconstruction (``prune=``) and the float32 path.

The contract under test (see :mod:`repro.cutting.sparse`):

* **bound soundness** — for any tree, any threshold, the L1 distance
  between the sparse raw reconstruction and the dense raw reconstruction
  of the *same data* is at most the reported ``prune_bound``
  (hypothesis-tested over random trees and thresholds);
* **dense degeneracy** — ``top_k(2^n)`` and ``threshold(0)`` keep
  everything and are bit-identical to the dense path, with a bound of
  exactly 0.0 (pruning is opt-in: the dense code path is untouched);
* **float32 fast path** — ``dtype=np.float32`` tracks the float64
  result to ≤ 1e-6 while RNG streams (sampling happens before the cast)
  are unchanged;
* **sparse sampling** — ``reconstruct_counts`` samples a pruned
  reconstruction over the kept outcomes only, and its dense path
  consumes the RNG exactly as :func:`repro.sim.sampler.sample_counts`
  always has (regression-pinned here);
* postprocess edge cases, dense and sparse.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import IdealBackend
from repro.core.pipeline import cut_and_run_tree
from repro.cutting import partition_tree
from repro.cutting.execution import (
    exact_tree_data,
    run_tree_fragments,
)
from repro.cutting.reconstruction import (
    project_to_simplex,
    _postprocess,
    reconstruct_counts,
    reconstruct_distribution,
    reconstruct_tree_distribution,
)
from repro.cutting.sparse import (
    SparseDistribution,
    postprocess_sparse,
    threshold,
    top_k,
)
from repro.cutting.variance import tree_tv_bound
from repro.exceptions import ReconstructionError, SimulationError
from repro.harness.scaling import (
    ghz_star_circuit,
    ghz_star_truth,
    tree_cut_circuit,
)
from repro.sim import simulate_statevector
from repro.sim.sampler import probs_to_counts, sample_sparse_counts
from repro.utils.bits import bitstring_to_index

TOL = 1e-9

_slow = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: builder-tree shapes exercised by the property tests: a chain, a Y and
#: a two-level tree with a branching interior node
_SHAPES = [[0], [0, 0], [0, 1], [0, 0, 1]]


def _tree_data(parents, seed):
    qc, specs = tree_cut_circuit(
        parents, 1, fresh_per_fragment=2, depth=2, seed=seed
    )
    tree = partition_tree(qc, specs)
    return exact_tree_data(tree)


# ---------------------------------------------------------------- policies


def test_policy_validation():
    with pytest.raises(ReconstructionError):
        threshold(-1e-3)
    with pytest.raises(ReconstructionError):
        top_k(0)


def test_policies_never_select_empty():
    scores = np.array([0.1, 0.9, 0.3])
    assert list(threshold(2.0).select(scores)) == [1]  # argmax fallback
    assert list(top_k(1).select(scores)) == [1]
    assert list(top_k(10).select(scores)) == [0, 1, 2]  # k >= size: all
    assert list(threshold(0.2).select(scores)) == [1, 2]


def test_top_k_stable_tie_break():
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    assert list(top_k(2).select(scores)) == [0, 1]


# ------------------------------------------------------ SparseDistribution


def test_sparse_distribution_validation():
    with pytest.raises(ReconstructionError):
        SparseDistribution(2, np.array([0, 4]), np.array([0.5, 0.5]))
    with pytest.raises(ReconstructionError):
        SparseDistribution(2, np.array([[0]]), np.array([[1.0]]))
    with pytest.raises(ReconstructionError):
        SparseDistribution(2, np.array([0, 1]), np.array([1.0]))


def test_sparse_distribution_round_trip():
    sd = SparseDistribution(3, np.array([1, 6]), np.array([0.25, 0.75]))
    dense = sd.to_dense()
    assert dense.shape == (8,)
    assert dense[1] == 0.25 and dense[6] == 0.75
    assert sd.nnz == 2
    assert sd.sum() == pytest.approx(1.0)
    assert sd.nbytes == sd.indices.nbytes + sd.values.nbytes
    d = sd.as_dict()
    assert {bitstring_to_index(k): v for k, v in d.items()} == {
        1: 0.25,
        6: 0.75,
    }
    # tv_against: the dict path (never densifies) equals the dense path
    truth = {1: 0.5, 7: 0.5}
    dense_truth = np.zeros(8)
    dense_truth[1], dense_truth[7] = 0.5, 0.5
    assert sd.tv_against(truth) == pytest.approx(sd.tv_against(dense_truth))


# ------------------------------------------------- bound soundness (prop.)


@_slow
@given(
    shape=st.sampled_from(_SHAPES),
    seed=st.integers(0, 2**32 - 1),
    eps=st.floats(1e-8, 0.3),
)
def test_prune_bound_sound_random_trees(shape, seed, eps):
    """Sparse-vs-dense L1 error never exceeds the reported bound."""
    data = _tree_data(shape, seed)
    dense = reconstruct_tree_distribution(data, postprocess="raw")
    sd = reconstruct_tree_distribution(
        data, postprocess="raw", prune=threshold(eps)
    )
    err = np.abs(sd.to_dense() - dense).sum()
    assert err <= sd.prune_bound + TOL


@_slow
@given(shape=st.sampled_from(_SHAPES), seed=st.integers(0, 2**32 - 1))
def test_top_k_full_is_bit_identical(shape, seed):
    """``top_k(2^n)`` (and ``threshold(0)``) degrade to the dense result."""
    data = _tree_data(shape, seed)
    dense = reconstruct_tree_distribution(data, postprocess="raw")
    for policy in (top_k(dense.size), threshold(0.0)):
        sd = reconstruct_tree_distribution(
            data, postprocess="raw", prune=policy
        )
        assert sd.prune_bound == 0.0
        assert np.array_equal(sd.to_dense(), dense)


def test_prune_bound_sound_on_finite_shot_data():
    """On finite shots the ISSUE acceptance is the combined tv bound.

    Shot noise perturbs the discarded entries too, so the pruning term
    alone is exact only in expectation; the delta-method sampling term
    covers the fluctuation (``tv_bound = sampling stddev + prune_bound``).
    """
    qc, specs = tree_cut_circuit([0, 0], 1, fresh_per_fragment=2, seed=11)
    tree = partition_tree(qc, specs)
    data = run_tree_fragments(tree, IdealBackend(), shots=400, seed=5)
    dense = reconstruct_tree_distribution(data, postprocess="raw")
    sd = reconstruct_tree_distribution(
        data, postprocess="raw", prune=threshold(3e-3)
    )
    tv = 0.5 * np.abs(sd.to_dense() - dense).sum()
    assert tv <= tree_tv_bound(data, prune_bound=sd.prune_bound)


def test_prune_rejects_neglected_identity():
    """Pruning needs the all-I row; a pool without I is rejected loudly."""
    data = _tree_data([0], 3)
    bases = [[("X", "Y", "Z")]]
    with pytest.raises(ReconstructionError, match="'I' basis"):
        reconstruct_tree_distribution(data, bases=bases, prune=threshold(0.1))


# ------------------------------------------------------- float32 fast path


def test_float32_tracks_float64():
    qc, specs = tree_cut_circuit([0, 0], 1, fresh_per_fragment=2, seed=21)
    tree = partition_tree(qc, specs)
    d64 = reconstruct_tree_distribution(exact_tree_data(tree))
    d32 = reconstruct_tree_distribution(
        exact_tree_data(tree, dtype=np.float32), dtype=np.float32
    )
    assert d32.dtype == np.float32
    assert np.abs(d32.astype(np.float64) - d64).max() <= 1e-6


def test_float32_pipeline_preserves_rng_stream():
    """Sampling draws before the cast: both dtypes see identical shots."""
    qc, specs = tree_cut_circuit([0, 0], 1, fresh_per_fragment=2, seed=23)
    dev = IdealBackend()
    r64 = cut_and_run_tree(qc, dev, specs, shots=300, seed=99)
    r32 = cut_and_run_tree(
        qc, dev, specs, shots=300, seed=99, dtype=np.float32
    )
    assert np.abs(
        r32.probabilities.astype(np.float64) - r64.probabilities
    ).max() <= 1e-6
    # identical RNG consumption: the float32 records are the float64
    # empirical probabilities merely rounded, never a different draw
    for rec64, rec32 in zip(r64.data.records, r32.data.records):
        for combo in rec64:
            assert rec32[combo].dtype == np.float32
            assert np.allclose(
                rec64[combo], rec32[combo].astype(np.float64), atol=1e-7
            )


# ------------------------------------------------------------ end-to-end


def test_pipeline_prune_and_tv_bound():
    qc, specs = tree_cut_circuit([0, 0], 1, fresh_per_fragment=2, seed=31)
    dev = IdealBackend()
    res = cut_and_run_tree(
        qc, dev, specs, shots=500, seed=7, prune=threshold(1e-3)
    )
    sd = res.probabilities
    assert isinstance(sd, SparseDistribution)
    assert res.prune_bound == sd.prune_bound >= 0.0
    assert res.tv_bound() == pytest.approx(
        res.predicted_stddev_tv() + res.prune_bound
    )
    assert res.tv_bound() == pytest.approx(
        tree_tv_bound(res.data, bases=res.bases, prune_bound=res.prune_bound)
    )
    # sparse expectation agrees with the scattered dense one
    diag = np.arange(float(1 << sd.num_qubits))
    assert res.expectation(diag) == pytest.approx(np.dot(sd.to_dense(), diag))


def test_ghz_star_truth_matches_statevector():
    angles = (0.3, 0.8)
    qc, specs = ghz_star_circuit(2, 2, angles=angles)
    p = simulate_statevector(qc).probabilities()
    truth = ghz_star_truth(2, 2, angles=angles)
    dense = np.zeros_like(p)
    for k, v in truth.items():
        dense[k] = v
    assert np.abs(p - dense).max() <= TOL
    # the cut-and-reconstructed sparse result hits the same distribution
    tree = partition_tree(qc, specs)
    sd = reconstruct_tree_distribution(
        exact_tree_data(tree), prune=threshold(1e-8)
    )
    assert sd.tv_against(truth) <= sd.prune_bound + TOL


def test_ghz_star_validation():
    with pytest.raises(ValueError):
        ghz_star_circuit(0, 3)
    with pytest.raises(ValueError):
        ghz_star_circuit(2, 2, angles=(0.1,))


# ------------------------------------------------------- counts / sampling


def _pair_data():
    from repro.circuits.circuit import Circuit
    from repro.cutting.cut import CutPoint, CutSpec
    from repro.cutting.execution import exact_fragment_data
    from repro.cutting.fragments import bipartition

    qc = Circuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.cx(1, 2)
    pair = bipartition(qc, CutSpec((CutPoint(1, 1),)))
    return exact_fragment_data(pair)


def test_reconstruct_counts_dense_path_unchanged():
    """seed=None reproduces the historical deterministic rounding exactly."""
    data = _pair_data()
    probs = reconstruct_distribution(data)
    expected = probs_to_counts(probs, 1000, 3)
    assert reconstruct_counts(data, 1000) == expected


def test_reconstruct_counts_dense_rng_stream():
    """A seeded dense draw consumes the RNG exactly like sample_counts."""
    from repro.sim.sampler import sample_counts

    data = _pair_data()
    probs = reconstruct_distribution(data)
    g1 = np.random.default_rng(42)
    g2 = np.random.default_rng(42)
    assert reconstruct_counts(data, 500, seed=g1) == sample_counts(
        probs, 500, g2, 3
    )
    # both generators advanced identically: next draws coincide
    assert g1.integers(1 << 30) == g2.integers(1 << 30)


def test_reconstruct_counts_sparse_never_densifies(monkeypatch):
    data = _tree_data([0, 0], 41)
    dense_counts = reconstruct_counts(data, 2000)
    # the sparse deterministic path agrees when nothing real is pruned
    monkeypatch.setattr(
        SparseDistribution,
        "to_dense",
        lambda self: (_ for _ in ()).throw(AssertionError("densified!")),
    )
    sparse_counts = reconstruct_counts(data, 2000, prune=threshold(1e-10))
    assert sparse_counts == dense_counts
    # and the seeded path samples over kept outcomes only
    counts = reconstruct_counts(
        data, 2000, prune=threshold(1e-10), seed=123
    )
    assert sum(counts.values()) == 2000


def test_reconstruct_counts_sparse_matches_sample_sparse_counts():
    data = _tree_data([0, 0], 43)
    sd = reconstruct_tree_distribution(data, prune=threshold(1e-4))
    expected = sample_sparse_counts(
        sd.indices,
        sd.values / sd.values.sum(),
        700,
        sd.num_qubits,
        np.random.default_rng(9),
    )
    got = reconstruct_counts(
        data, 700, prune=threshold(1e-4), seed=np.random.default_rng(9)
    )
    assert got == expected


def test_reconstruct_counts_rejects_prune_on_pair_data():
    with pytest.raises(ReconstructionError, match="pair data is dense"):
        reconstruct_counts(_pair_data(), 100, prune=threshold(1e-3))


def test_sample_sparse_counts_validation():
    idx = np.array([0, 3])
    with pytest.raises(SimulationError):
        sample_sparse_counts(idx, np.array([0.5]), 10, 2)
    with pytest.raises(SimulationError):
        sample_sparse_counts(idx, np.array([0.5, 0.5]), 0, 2)
    with pytest.raises(SimulationError):
        sample_sparse_counts(idx, np.array([0.9, 0.3]), 10, 2)


# --------------------------------------------------- postprocess edge cases


def test_project_to_simplex_edge_cases():
    # all-negative: still a valid distribution, ordering preserved
    v = project_to_simplex(np.array([-0.5, -0.1, -0.9]))
    assert np.allclose(v, [0.3, 0.7, 0.0])
    assert v.sum() == pytest.approx(1.0) and (v >= 0).all()
    # already a distribution: unchanged
    p = np.array([0.2, 0.3, 0.5])
    assert np.allclose(project_to_simplex(p), p)
    # single spike survives
    assert np.allclose(
        project_to_simplex(np.array([0.0, 5.0, 0.0])), [0.0, 1.0, 0.0]
    )


def test_dense_postprocess_edge_cases():
    with pytest.raises(ReconstructionError):
        _postprocess(np.array([-0.2, -0.1]), "clip")
    with pytest.raises(ReconstructionError):
        _postprocess(np.array([0.5, 0.5]), "nope")
    assert np.array_equal(
        _postprocess(np.array([-1.0, 2.0]), "raw"), [-1.0, 2.0]
    )


def test_sparse_postprocess_edge_cases():
    sd = SparseDistribution(2, np.array([0, 3]), np.array([-0.2, 0.6]))
    assert postprocess_sparse(sd, "raw") is sd
    clipped = postprocess_sparse(sd, "clip")
    assert np.array_equal(clipped.values, [0.0, 1.0])
    assert np.array_equal(clipped.indices, sd.indices)
    simplexed = postprocess_sparse(sd, "simplex")
    assert simplexed.values.sum() == pytest.approx(1.0)
    assert np.array_equal(
        simplexed.values, project_to_simplex(np.array([-0.2, 0.6]))
    )
    with pytest.raises(ReconstructionError):
        postprocess_sparse(sd, "median")
    allneg = SparseDistribution(2, np.array([1]), np.array([-1.0]))
    with pytest.raises(ReconstructionError, match="zero mass"):
        postprocess_sparse(allneg, "clip")


def test_sparse_sampling_guards():
    # raw (unnormalised beyond the pruning tolerance) refuses to sample
    sd = SparseDistribution(2, np.array([0]), np.array([0.4]))
    with pytest.raises(ReconstructionError, match="postprocess"):
        sd.sample_counts(10, seed=0)
    # within the bound's tolerance it renormalises and samples
    sd = SparseDistribution(
        2, np.array([0, 1]), np.array([0.5, 0.4]), prune_bound=0.2
    )
    counts = sd.sample_counts(50, seed=0)
    assert sum(counts.values()) == 50
    assert sd.to_counts(90) == {"00": 45, "10": 36}
