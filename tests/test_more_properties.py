"""Additional property-based tests: serialisation, noise algebra, sampling."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuits import circuit_from_qasm, circuit_to_qasm, random_circuit
from repro.linalg.channels import is_cptp
from repro.noise import (
    amplitude_damping,
    depolarizing,
    pauli_channel,
    phase_damping,
)
from repro.noise.readout import ReadoutError, apply_readout_error
from repro.sim import circuit_unitary, simulate_statevector
from repro.sim.sampler import counts_to_probs, sample_counts
from repro.utils.bits import marginalize_probs

from tests.helpers import phase_equal

_fast = settings(max_examples=25, deadline=None)
_slow = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_prob = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@_slow
@given(seed=st.integers(0, 100_000), n=st.integers(1, 4), depth=st.integers(1, 4))
def test_qasm_roundtrip_preserves_unitary(seed, n, depth):
    qc = random_circuit(n, depth, seed=seed)
    back = circuit_from_qasm(circuit_to_qasm(qc))
    assert phase_equal(circuit_unitary(back), circuit_unitary(qc), tol=1e-8)


@_fast
@given(p=_prob, q=_prob)
def test_channel_composition_stays_cptp(p, q):
    chan = depolarizing(p).compose(amplitude_damping(q))
    assert is_cptp(chan.operators)


@_fast
@given(p=_prob, q=_prob)
def test_channel_tensor_stays_cptp(p, q):
    chan = phase_damping(p).tensor(depolarizing(q))
    assert is_cptp(chan.operators)


@_fast
@given(
    px=st.floats(0, 0.4, allow_nan=False),
    py=st.floats(0, 0.3, allow_nan=False),
    pz=st.floats(0, 0.3, allow_nan=False),
)
def test_pauli_channel_cptp(px, py, pz):
    assert is_cptp(pauli_channel(px, py, pz).operators)


@_fast
@given(
    p01=st.floats(0, 1, allow_nan=False),
    p10=st.floats(0, 1, allow_nan=False),
    seed=st.integers(0, 10_000),
)
def test_readout_error_preserves_simplex(p01, p10, seed):
    rng = np.random.default_rng(seed)
    probs = rng.random(8)
    probs /= probs.sum()
    out = apply_readout_error(
        probs, {q: ReadoutError(p01, p10) for q in range(3)}, 3
    )
    assert np.all(out >= 0)
    assert np.isclose(out.sum(), 1.0)


@_slow
@given(seed=st.integers(0, 100_000), shots=st.integers(100, 5000))
def test_sampling_roundtrip_consistency(seed, shots):
    rng = np.random.default_rng(seed)
    probs = rng.random(16)
    probs /= probs.sum()
    counts = sample_counts(probs, shots, seed=seed)
    back = counts_to_probs(counts, 4)
    assert np.isclose(back.sum(), 1.0)
    # empirical distribution within generous multinomial bounds
    assert np.abs(back - probs).max() < 0.5


@_slow
@given(seed=st.integers(0, 100_000))
def test_marginals_commute_with_simulation(seed):
    """Marginalising the full distribution == tracing out in any order."""
    qc = random_circuit(4, 3, seed=seed)
    probs = simulate_statevector(qc).probabilities()
    m01 = marginalize_probs(probs, [0, 1], 4)
    m0 = marginalize_probs(m01, [0], 2)
    direct = marginalize_probs(probs, [0], 4)
    np.testing.assert_allclose(m0, direct, atol=1e-12)


@_slow
@given(seed=st.integers(0, 100_000), n=st.integers(2, 4))
def test_compose_with_inverse_is_identity(seed, n):
    qc = random_circuit(n, 3, seed=seed)
    both = qc.compose(qc.inverse())
    probs = simulate_statevector(both).probabilities()
    assert np.isclose(probs[0], 1.0, atol=1e-9)
