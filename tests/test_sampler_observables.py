"""Unit tests for sampling utilities and observable machinery."""

import numpy as np
import pytest

from repro.exceptions import ReproError, SimulationError
from repro.observables import (
    BitstringProjector,
    DiagonalObservable,
    all_bitstring_projectors,
    split_diagonal_observable,
)
from repro.sim.sampler import counts_to_probs, probs_to_counts, sample_counts


class TestSampler:
    def test_counts_sum(self, rng):
        p = rng.random(8)
        p /= p.sum()
        counts = sample_counts(p, 1000, seed=0)
        assert sum(counts.values()) == 1000

    def test_deterministic_distribution(self):
        p = np.zeros(4)
        p[2] = 1.0
        counts = sample_counts(p, 50, seed=1)
        assert counts == {"01": 50}

    def test_rejects_unnormalised(self):
        with pytest.raises(SimulationError):
            sample_counts(np.array([0.5, 0.6]), 10)

    def test_rejects_bad_length(self):
        with pytest.raises(SimulationError):
            sample_counts(np.ones(3) / 3, 10)

    def test_rejects_zero_shots(self):
        with pytest.raises(SimulationError):
            sample_counts(np.array([1.0, 0.0]), 0)

    def test_counts_to_probs_roundtrip(self, rng):
        p = rng.random(16)
        p /= p.sum()
        counts = sample_counts(p, 500_000, seed=2)
        back = counts_to_probs(counts, 4)
        assert np.abs(back - p).max() < 0.01

    def test_counts_to_probs_validation(self):
        with pytest.raises(SimulationError):
            counts_to_probs({"01": 5}, 3)  # wrong length
        with pytest.raises(SimulationError):
            counts_to_probs({}, 2)
        with pytest.raises(SimulationError):
            counts_to_probs({"01": -1}, 2)

    def test_probs_to_counts_exact(self):
        counts = probs_to_counts(np.array([0.25, 0.75]), 4)
        assert counts == {"0": 1, "1": 3}


class TestDiagonalObservable:
    def test_expectation(self):
        obs = DiagonalObservable(np.array([1.0, -1.0]), 1)
        assert obs.expectation(np.array([0.7, 0.3])) == pytest.approx(0.4)

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            DiagonalObservable(np.zeros(3), 2)
        obs = DiagonalObservable(np.zeros(4), 2)
        with pytest.raises(ReproError):
            obs.expectation(np.zeros(8))

    def test_parity_matches_pauli_string(self):
        from repro.linalg.paulis import PauliString

        obs = DiagonalObservable.parity(3)
        np.testing.assert_allclose(
            obs.diagonal, PauliString.from_label("ZZZ").diagonal().real
        )

    def test_from_function(self):
        obs = DiagonalObservable.from_function(lambda i: float(i), 2)
        np.testing.assert_allclose(obs.diagonal, [0, 1, 2, 3])

    def test_projector(self):
        proj = BitstringProjector("010")
        assert proj.diagonal[2] == 1.0
        assert proj.diagonal.sum() == 1.0

    def test_all_projectors(self):
        projs = all_bitstring_projectors(2)
        assert len(projs) == 4
        total = sum(p.diagonal for p in projs)
        np.testing.assert_allclose(total, np.ones(4))


class TestSplitObservable:
    def test_projector_splits(self):
        proj = BitstringProjector("011")
        d1, d2 = split_diagonal_observable(proj, [0], [1, 2])
        # reconstruct: diag[b] = d1[bit0] * d2[bits 1,2]
        full = np.zeros(8)
        for b in range(8):
            full[b] = d1[b & 1] * d2[(b >> 1) & 3]
        np.testing.assert_allclose(full, proj.diagonal, atol=1e-12)

    def test_parity_splits(self):
        obs = DiagonalObservable.parity(4)
        d1, d2 = split_diagonal_observable(obs, [0, 1], [2, 3])
        full = np.zeros(16)
        for b in range(16):
            full[b] = d1[b & 3] * d2[(b >> 2) & 3]
        np.testing.assert_allclose(full, obs.diagonal, atol=1e-10)

    def test_group_order_respected(self):
        proj = BitstringProjector("01")
        d1, d2 = split_diagonal_observable(proj, [1], [0])
        assert d1[1] != 0 and d2[0] != 0  # qubit1=1, qubit0=0

    def test_nonseparable_rejected(self):
        # diag = parity bit0 XOR bit1 as 0/1 indicator is separable; use a
        # genuinely entangled diagonal: 1 on {00, 11, 01} only
        d = np.array([1.0, 1.0, 1.0, 0.0])
        with pytest.raises(ReproError):
            split_diagonal_observable(DiagonalObservable(d, 2), [0], [1])

    def test_bad_partition_rejected(self):
        obs = DiagonalObservable.parity(3)
        with pytest.raises(ReproError):
            split_diagonal_observable(obs, [0], [1])
