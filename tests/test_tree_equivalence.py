"""Equivalence of fragment-tree cutting against brute-force references.

The PR that generalised chains to trees (:mod:`repro.cutting.tree`, the
tree-aware cache pool and the leaves-to-root contraction) must be exact
physics plus a pure architecture change:

* :func:`partition_tree` must produce genuine branched topologies (a
  Y and a 5-node two-level tree with a 2-child interior node) and reject
  non-tree spec sets loudly;
* the tree contraction has to match the brute-force reference (a Python
  row-loop over the *full basis product across all cut groups*) to ≤ 1e-9,
  ideal and fake-hardware data, full and neglected pools;
* exact tree data has to reconstruct the uncut circuit's distribution
  exactly;
* the noisy tree fast path has to reproduce per-variant circuit execution
  bit-identically (counts, clock, metadata) while the cache pool performs
  exactly one body transpile per node (the N-transpile law);
* **chain degeneracy**: a linear spec set run through ``partition_tree`` +
  the tree contraction must be bit-identical (noisy) / ≤ 1e-9 (ideal) to
  the chain path — which itself now routes through the tree engine;
* the batched stacked-rotation warm path must equal the per-setting
  rotation path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import IdealBackend
from repro.backends.base import Backend
from repro.backends.fake_hardware import FakeHardwareBackend
from repro.core.neglect import reduced_bases
from repro.core.pipeline import cut_and_run_chain, cut_and_run_tree
from repro.cutting import partition_chain, partition_tree
from repro.cutting.cache import TreeFragmentSimCache
from repro.cutting.execution import (
    _split_joint_probs,
    exact_chain_data,
    exact_tree_data,
    run_chain_fragments,
    run_tree_fragments,
)
from repro.cutting.reconstruction import (
    build_tree_fragment_tensor,
    build_tree_fragment_tensor_reference,
    reconstruct_chain_distribution,
    reconstruct_tree_distribution,
    reconstruct_tree_distribution_reference,
)
from repro.cutting.variants import tree_variant_tuples, upstream_setting_tuples
from repro.exceptions import CutError
from repro.harness.scaling import chain_cut_circuit, tree_cut_circuit
from repro.noise.kraus import (
    amplitude_damping,
    depolarizing,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.sim import simulate_statevector
from repro.transpile.coupling import CouplingMap
from repro.utils.rng import as_generator, derive_rng

TOL = 1e-9

#: the two acceptance topologies: a Y (root with two child groups) and a
#: 5-node two-level tree whose interior node has two child groups
Y_PARENTS = [0, 0]
FIVE_PARENTS = [0, 0, 1, 1]

_slow = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def make_tree(parents, cuts_per_group, seed, **kwargs):
    qc, specs = tree_cut_circuit(
        parents, cuts_per_group, fresh_per_fragment=2, depth=2,
        seed=seed, **kwargs,
    )
    return qc, partition_tree(qc, specs)


def make_noisy_device(num_qubits: int = 6) -> FakeHardwareBackend:
    nm = NoiseModel()
    nm.add_gate_noise(["sx", "x", "rz"], depolarizing(2e-3))
    nm.add_gate_noise(["sx", "x"], amplitude_damping(1.5e-3))
    nm.add_gate_noise(["cx"], two_qubit_depolarizing(8e-3))
    for q in range(num_qubits):
        nm.add_readout_error(q, ReadoutError(p01=0.015, p10=0.03))
    return FakeHardwareBackend(
        CouplingMap.linear(num_qubits), nm, name="tree_test_6q"
    )


def noisy_tree_data(tree, dev, shots, seed, variants=None):
    """Tree data through the cached noisy fast path + cache pool."""
    pool = dev.make_tree_cache_pool(tree)
    return run_tree_fragments(
        tree, dev, shots=shots, variants=variants, seed=seed, pool=pool
    )


def neglected_bases(tree):
    """A mixed neglect pattern: first group Y-golden, last group X+Z-golden."""
    golden = [None] * tree.num_groups
    golden[0] = {0: "Y"}
    golden[-1] = {tree.group_sizes[-1] - 1: ("X", "Z")}
    return [
        reduced_bases(k, gm) if gm else [("I", "X", "Y", "Z")] * k
        for k, gm in zip(tree.group_sizes, golden)
    ]


def variants_for_bases(tree, bases):
    """Per-fragment (inits, setting) lists covering the given group pools."""
    from repro.cutting.variants import downstream_init_tuples

    out = []
    for frag in tree.fragments:
        inits = (
            downstream_init_tuples(frag.num_prep, bases[frag.in_group])
            if frag.num_prep
            else [()]
        )
        settings = (
            upstream_setting_tuples(
                frag.num_meas,
                [
                    tuple(m for m in pool if m != "I")
                    for h in frag.meas_groups
                    for pool in bases[h]
                ],
            )
            if frag.num_meas
            else [()]
        )
        out.append([(a, s) for a in inits for s in settings])
    return out


# ---------------------------------------------------------------------------
# topology: partition_tree builds trees, rejects non-trees
# ---------------------------------------------------------------------------


class TestPartitionTree:
    def test_y_topology_shape(self):
        _, tree = make_tree(Y_PARENTS, 1, 301)
        assert tree.num_fragments == 3
        assert not tree.is_chain
        root = tree.fragments[0]
        assert root.in_group is None and len(root.meas_groups) == 2
        assert sorted(tree.children(0)) == [1, 2]
        for i in (1, 2):
            assert tree.fragments[i].parent == 0
            assert tree.fragments[i].num_meas == 0

    def test_five_node_two_level_shape(self):
        """Acceptance topology: 5 nodes, one interior node with 2 child
        groups."""
        _, tree = make_tree(FIVE_PARENTS, 1, 302)
        assert tree.num_fragments == 5
        assert not tree.is_chain
        branching = [
            f.index for f in tree.fragments if len(f.meas_groups) == 2
        ]
        assert len(branching) == 2  # the root and the two-child interior
        interior = [i for i in branching if tree.fragments[i].in_group is not None]
        assert len(interior) == 1
        frag = tree.fragments[interior[0]]
        assert frag.num_prep == 1 and frag.num_meas == 2
        # flat layout is the group-ordered concatenation
        assert frag.cut_local == [
            w for h in frag.meas_groups for w in frag.cut_local_by_group[h]
        ]

    def test_multi_cut_groups(self):
        _, tree = make_tree(Y_PARENTS, [2, 1], 303)
        assert tree.group_sizes == [2, 1]
        src0 = tree.fragments[tree.group_src[0]]
        assert len(src0.cut_local_by_group[0]) == 2

    def test_group_offset(self):
        _, tree = make_tree(FIVE_PARENTS, [1, 2, 1, 1], 304)
        for i, frag in enumerate(tree.fragments):
            off = 0
            for h in frag.meas_groups:
                assert frag.group_offset(h) == off
                off += len(frag.cut_local_by_group[h])
        with pytest.raises(CutError):
            tree.fragments[0].group_offset(99)

    def test_chain_specs_produce_chain_shaped_tree(self):
        qc, specs = chain_cut_circuit(
            3, 1, fresh_per_fragment=2, depth=2, seed=305
        )
        tree = partition_tree(qc, specs)
        assert tree.is_chain
        assert tree.group_src == [0, 1] and tree.group_dst == [1, 2]

    def test_partition_chain_rejects_tree_pointing_to_partition_tree(self):
        """Satellite: the chain entry point no longer dead-ends on branched
        specs — the error names partition_tree."""
        qc, specs = tree_cut_circuit(
            Y_PARENTS, 1, fresh_per_fragment=2, depth=2, seed=306
        )
        with pytest.raises(CutError, match="partition_tree"):
            partition_chain(qc, specs)
        # the same specs are fully supported by the tree engine
        assert partition_tree(qc, specs).num_fragments == 3

    def test_spec_spanning_two_fragments_rejected(self):
        qc, specs = tree_cut_circuit(
            [0, 1], 1, fresh_per_fragment=2, depth=2, seed=307
        )
        from repro.cutting.cut import CutPoint, CutSpec

        # one point from each of the two specs: after the first split the
        # second spec's points no longer live in one piece
        bad = CutSpec((specs[0].cuts[0], specs[1].cuts[0]))
        with pytest.raises(CutError, match="single fragment"):
            partition_tree(qc, [specs[0], bad])

    def test_needs_at_least_one_spec(self):
        qc, _ = make_tree(Y_PARENTS, 1, 308)
        with pytest.raises(CutError):
            partition_tree(qc, [])

    def test_dag_specs_route_to_dag_engine(self):
        """Two groups preparing into one fragment now builds a joint-prep
        DAG node instead of raising "a DAG, not a tree"."""
        from repro.circuits.circuit import Circuit
        from repro.cutting.cut import CutPoint, CutSpec

        qc = Circuit(2, name="dag")
        qc.rx(0.3, 0)          # 0
        qc.ry(0.2, 1)          # 1
        qc.cx(1, 0)            # 2: joint block fed by both cuts
        specs = [
            CutSpec((CutPoint(0, 0),)),
            CutSpec((CutPoint(1, 1),)),
        ]
        tree = partition_tree(qc, specs)
        assert not tree.is_tree and not tree.is_chain
        sink = tree.fragments[-1]
        assert sink.in_groups == [0, 1] and sink.in_group is None
        assert sink.num_prep == 2 and sink.num_parents == 2
        # flat prep layout is the group-ordered concatenation
        assert sink.prep_local == [
            w for h in sink.in_groups for w in sink.prep_local_by_group[h]
        ]
        assert sink.prep_offset(0) == 0 and sink.prep_offset(1) == 1
        with pytest.raises(CutError):
            sink.prep_offset(99)
        assert tree.group_dst == [2, 2]
        assert tree.parents(2) == [0, 1]

    def test_cyclic_construction_rejected(self):
        """Genuinely cyclic structures still fail loudly (src ≥ dst)."""
        import copy

        from repro.circuits.circuit import Circuit
        from repro.cutting.cut import CutPoint, CutSpec
        from repro.cutting.tree import FragmentTree

        qc = Circuit(2, name="dag")
        qc.rx(0.3, 0)          # 0
        qc.ry(0.2, 1)          # 1
        qc.cx(1, 0)            # 2
        tree = partition_tree(
            qc, [CutSpec((CutPoint(0, 0),)), CutSpec((CutPoint(1, 1),))]
        )
        frags = copy.deepcopy(tree.fragments)
        # re-home group 1 so its source and destination coincide on
        # fragment 1 — a self-loop, the minimal cycle
        frags[1].in_group = 1
        frags[1].prep_local = [0]
        frags[2].in_group = 0
        frags[2].in_groups = [0]
        frags[2].prep_local = [frags[2].prep_local[0]]
        frags[2].prep_local_by_group = {0: list(frags[2].prep_local)}
        with pytest.raises(CutError, match="cyclic|must precede"):
            FragmentTree(
                fragments=frags, group_sizes=list(tree.group_sizes)
            )

    def test_splitting_a_groups_measured_wires_rejected(self):
        from repro.circuits.circuit import Circuit
        from repro.cutting.cut import CutPoint, CutSpec

        qc = Circuit(5, name="split_meas")
        qc.h(2)                # 0
        qc.cx(2, 0)            # 1
        qc.cx(2, 1)            # 2
        qc.cx(0, 3)            # 3
        qc.cx(1, 4)            # 4
        specs = [
            CutSpec((CutPoint(0, 1), CutPoint(1, 2))),
            # re-cutting the source fragment between the two measured
            # wires strands them in different fragments
            CutSpec((CutPoint(2, 1),)),
        ]
        with pytest.raises(CutError, match="splits the measured wires"):
            partition_tree(qc, specs)

    def test_splitting_a_groups_preparation_wires_rejected(self):
        from repro.circuits.circuit import Circuit
        from repro.cutting.cut import CutPoint, CutSpec

        qc = Circuit(3, name="split_prep")
        qc.rx(0.3, 0)          # 0
        qc.ry(0.4, 1)          # 1
        qc.rz(0.5, 0)          # 2: prep wire 0 stays up at the next cut
        qc.h(2)                # 3
        qc.cx(2, 1)            # 4: prep wire 1 dragged downstream
        specs = [
            CutSpec((CutPoint(0, 0), CutPoint(1, 1))),
            CutSpec((CutPoint(2, 3),)),
        ]
        with pytest.raises(CutError, match="splits the preparation wires"):
            partition_tree(qc, specs)

    def test_direct_construction_validation(self):
        from repro.cutting.tree import FragmentTree

        _, tree = make_tree(Y_PARENTS, 1, 309)
        with pytest.raises(CutError, match="at least two"):
            FragmentTree(fragments=tree.fragments[:1], group_sizes=[])
        with pytest.raises(CutError, match="one cut group"):
            FragmentTree(
                fragments=list(tree.fragments), group_sizes=[1]
            )

    def test_link_rejects_malformed_structures(self):
        import copy

        from repro.cutting.tree import FragmentTree

        def rebuild(mutate, match):
            _, tree = make_tree(Y_PARENTS, 1, 310)
            frags = copy.deepcopy(tree.fragments)
            mutate(frags)
            with pytest.raises(CutError, match=match):
                FragmentTree(
                    fragments=frags, group_sizes=list(tree.group_sizes)
                )

        def root_enters(frags):
            frags[0].in_group = 0

        rebuild(root_enters, "root fragment")

        def no_entering(frags):
            # a non-root source is legal in a DAG, but it strands the
            # group that used to enter this fragment
            frags[1].in_group = None
            frags[1].in_groups = []
            frags[1].prep_local = []
            frags[1].prep_local_by_group = {}

        rebuild(no_entering, "not attached")

        def duplicate_dst(frags):
            frags[1].in_group = frags[2].in_group

        rebuild(duplicate_dst, "enters two fragments|not attached")

        def group_out_of_range(frags):
            frags[1].in_group = 99

        rebuild(group_out_of_range, "out of range")

        def wrong_prep_count(frags):
            frags[1].prep_local = frags[1].prep_local + [0]

        rebuild(wrong_prep_count, "preparation wires")

        def flat_mismatch(frags):
            frags[0].cut_local = list(reversed(frags[0].cut_local))

        rebuild(flat_mismatch, "group-ordered concatenation")


# ---------------------------------------------------------------------------
# tree contraction vs brute-force reference
# ---------------------------------------------------------------------------


class TestTreeMatchesBruteForce:
    @pytest.mark.parametrize(
        "parents,cuts,seed",
        [
            (Y_PARENTS, 1, 11),
            (Y_PARENTS, [2, 1], 12),
            (FIVE_PARENTS, 1, 13),
            ([0, 1, 1], [1, 2, 1], 14),
        ],
    )
    def test_ideal_full_pools(self, parents, cuts, seed):
        _, tree = make_tree(parents, cuts, seed)
        data = exact_tree_data(tree)
        fast = reconstruct_tree_distribution(data, postprocess="raw")
        ref = reconstruct_tree_distribution_reference(data)
        np.testing.assert_allclose(fast, ref, atol=TOL)

    @pytest.mark.parametrize(
        "parents,cuts,seed", [(Y_PARENTS, 2, 21), (FIVE_PARENTS, 1, 22)]
    )
    def test_ideal_neglected_pools(self, parents, cuts, seed):
        _, tree = make_tree(parents, cuts, seed)
        bases = neglected_bases(tree)
        data = exact_tree_data(tree, variants=variants_for_bases(tree, bases))
        fast = reconstruct_tree_distribution(data, bases=bases, postprocess="raw")
        ref = reconstruct_tree_distribution_reference(data, bases=bases)
        np.testing.assert_allclose(fast, ref, atol=TOL)

    @pytest.mark.parametrize(
        "parents,seed", [(Y_PARENTS, 31), (FIVE_PARENTS, 32)]
    )
    def test_noisy_full_pools(self, parents, seed):
        _, tree = make_tree(parents, 1, seed)
        dev = make_noisy_device()
        data = noisy_tree_data(tree, dev, shots=300, seed=seed)
        fast = reconstruct_tree_distribution(data, postprocess="raw")
        ref = reconstruct_tree_distribution_reference(data)
        np.testing.assert_allclose(fast, ref, atol=TOL)

    def test_noisy_neglected_pools(self):
        _, tree = make_tree(Y_PARENTS, 1, 33)
        bases = neglected_bases(tree)
        dev = make_noisy_device()
        data = noisy_tree_data(
            tree, dev, shots=200, seed=5,
            variants=variants_for_bases(tree, bases),
        )
        fast = reconstruct_tree_distribution(data, bases=bases, postprocess="raw")
        ref = reconstruct_tree_distribution_reference(data, bases=bases)
        np.testing.assert_allclose(fast, ref, atol=TOL)

    def test_per_node_tensors_match_reference(self):
        _, tree = make_tree(FIVE_PARENTS, 1, 41)
        data = exact_tree_data(tree)
        for i in range(tree.num_fragments):
            fast, rp_f, rg_f = build_tree_fragment_tensor(data, i)
            ref, rp_r, rg_r = build_tree_fragment_tensor_reference(data, i)
            assert rp_f == rp_r and rg_f == rg_r
            assert fast.ndim == 2 + tree.fragments[i].num_children
            np.testing.assert_allclose(fast, ref, atol=TOL)


# ---------------------------------------------------------------------------
# exactness against the uncut circuit
# ---------------------------------------------------------------------------


class TestTreeExactness:
    @pytest.mark.parametrize(
        "parents,cuts,seed",
        [
            (Y_PARENTS, 1, 51),
            (Y_PARENTS, [1, 2], 52),
            (FIVE_PARENTS, 1, 53),
            ([0, 0, 0], 1, 54),  # a 3-pronged star
        ],
    )
    def test_exact_data_reconstructs_truth(self, parents, cuts, seed):
        qc, tree = make_tree(parents, cuts, seed)
        data = exact_tree_data(tree)
        p = reconstruct_tree_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=TOL)

    def test_golden_neglect_stays_exact_on_real_tree(self):
        """Y-golden tree circuit: neglecting Y per group costs no accuracy."""
        qc, specs = tree_cut_circuit(
            FIVE_PARENTS, 1, fresh_per_fragment=2, depth=2, seed=63,
            real_blocks=True,
        )
        res = cut_and_run_tree(
            qc,
            IdealBackend(exact=True),
            specs,
            shots=1_000_000,
            golden="known",
            golden_maps=[{0: "Y"}] * 4,
            seed=3,
            postprocess="raw",
        )
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(res.probabilities, truth, atol=1e-5)
        full = cut_and_run_tree(
            qc, IdealBackend(exact=True), specs, shots=1_000_000, seed=3
        )
        assert res.total_executions < full.total_executions

    @_slow
    @given(
        seed=st.integers(0, 10_000),
        parents=st.sampled_from(
            [(0, 0), (0, 0, 1), (0, 0, 1, 1), (0, 1, 0), (0, 0, 0)]
        ),
    )
    def test_random_tree_reconstructs_uncut_distribution(self, seed, parents):
        qc, tree = make_tree(list(parents), 1, seed)
        data = exact_tree_data(tree)
        p = reconstruct_tree_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-8)


# ---------------------------------------------------------------------------
# chain degeneracy: linear specs through the tree path == chain path
# ---------------------------------------------------------------------------


class TestChainDegeneracy:
    @_slow
    @given(seed=st.integers(0, 10_000), num_fragments=st.integers(3, 4))
    def test_ideal_linear_tree_matches_chain(self, seed, num_fragments):
        """Property (satellite): a linear spec set through partition_tree +
        tree contraction is ≤ 1e-9 from the chain path on exact data."""
        qc, specs = chain_cut_circuit(
            num_fragments, 1, fresh_per_fragment=2, depth=2, seed=seed
        )
        chain = partition_chain(qc, specs)
        tree = partition_tree(qc, specs)
        assert tree.is_chain
        p_chain = reconstruct_chain_distribution(
            exact_chain_data(chain), postprocess="raw"
        )
        p_tree = reconstruct_tree_distribution(
            exact_tree_data(tree), postprocess="raw"
        )
        np.testing.assert_allclose(p_tree, p_chain, atol=TOL)

    def test_noisy_linear_tree_bit_identical_to_chain(self):
        """Acceptance: the noisy chain fast path and the tree fast path on
        the same linear specs produce bit-identical records and counts."""
        qc, specs = chain_cut_circuit(
            3, 1, fresh_per_fragment=2, depth=2, seed=71
        )
        chain = partition_chain(qc, specs)
        tree = partition_tree(qc, specs)
        chain_data = noisy_tree_data(chain, make_noisy_device(), 800, seed=9)
        tree_data = noisy_tree_data(tree, make_noisy_device(), 800, seed=9)
        for i in range(chain.num_fragments):
            assert set(chain_data.records[i]) == set(tree_data.records[i])
            for k in chain_data.records[i]:
                np.testing.assert_array_equal(
                    chain_data.records[i][k], tree_data.records[i][k]
                )
        assert chain_data.modeled_seconds == pytest.approx(
            tree_data.modeled_seconds, rel=1e-12
        )

    def test_cut_and_run_chain_bit_identical_to_tree_engine(self):
        """Acceptance: chain entry points keep their signatures and produce
        bit-identical results via the tree engine."""
        qc, specs = chain_cut_circuit(
            3, 1, fresh_per_fragment=2, depth=2, seed=72
        )
        res_chain = cut_and_run_chain(
            qc, IdealBackend(), specs, shots=400, seed=5
        )
        res_tree = cut_and_run_tree(
            qc, IdealBackend(), specs, shots=400, seed=5
        )
        np.testing.assert_array_equal(
            res_chain.probabilities, res_tree.probabilities
        )
        assert res_chain.total_executions == res_tree.total_executions
        assert res_chain.chain.is_chain and res_tree.tree.is_chain

    def test_chain_entry_points_keep_their_result_type(self):
        """Chain entry points still hand back ChainFragmentData (the
        historical type), even though the work runs on the tree engine."""
        from repro.cutting.execution import ChainFragmentData
        from repro.parallel import run_chain_fragments_parallel

        qc, specs = chain_cut_circuit(
            3, 1, fresh_per_fragment=2, depth=2, seed=73
        )
        chain = partition_chain(qc, specs)
        assert isinstance(exact_chain_data(chain), ChainFragmentData)
        assert isinstance(
            run_chain_fragments(chain, IdealBackend(), shots=50, seed=0),
            ChainFragmentData,
        )
        assert isinstance(
            run_chain_fragments_parallel(
                chain, IdealBackend, shots=50, seed=0, mode="serial"
            ),
            ChainFragmentData,
        )
        res = cut_and_run_chain(qc, IdealBackend(), specs, shots=50, seed=0)
        assert isinstance(res.data, ChainFragmentData)


# ---------------------------------------------------------------------------
# noisy fast path: bit-identical to per-variant execution; pool call counts
# ---------------------------------------------------------------------------


class TestNoisyTreeFastPath:
    def test_counts_clock_and_metadata_identical_to_execution(self):
        """Acceptance: every node's cached variants equal submitting the
        logical tree_variant circuits through ``run`` — bit for bit."""
        _, tree = make_tree(FIVE_PARENTS, 1, 81)
        fast_dev = make_noisy_device()
        ref_dev = make_noisy_device()
        for i in range(tree.num_fragments):
            combos = tree_variant_tuples(tree, i)
            fast = fast_dev.run_tree_variants(
                tree, i, combos, shots=1500, seed=17 + i
            )
            ref = Backend.run_tree_variants(
                ref_dev, tree, i, combos, shots=1500, seed=17 + i
            )
            assert len(fast) == len(ref)
            for f, r in zip(fast, ref):
                assert f.counts == r.counts
                assert f.seconds == pytest.approx(r.seconds, rel=1e-12)
                assert (
                    f.metadata["transpiled_ops"] == r.metadata["transpiled_ops"]
                )
                assert f.metadata["layout"] == r.metadata["layout"]
        assert fast_dev.clock.now == pytest.approx(ref_dev.clock.now, rel=1e-12)

    def test_run_tree_fragments_matches_per_variant_records(self):
        """run_tree_fragments through the pool == per-variant submission."""
        _, tree = make_tree(Y_PARENTS, 1, 82)
        dev = make_noisy_device()
        data = noisy_tree_data(tree, dev, shots=1200, seed=9)
        ref_dev = make_noisy_device()
        rng = as_generator(9)
        for i in range(tree.num_fragments):
            frag = tree.fragments[i]
            combos = tree_variant_tuples(tree, i)
            results = Backend.run_tree_variants(
                ref_dev, tree, i, combos, shots=1200,
                seed=derive_rng(rng, 0x60 + i),
            )
            for combo, res in zip(combos, results):
                np.testing.assert_array_equal(
                    data.records[i][combo],
                    _split_joint_probs(
                        res.probabilities(), frag.out_local, frag.cut_local
                    ),
                )

    @pytest.mark.parametrize("parents", [Y_PARENTS, FIVE_PARENTS])
    def test_pool_transpiles_once_per_node(self, parents):
        """Acceptance: the N-body-transpile law holds on trees — one body
        transpile/evolution bank per node, however many variants run."""
        _, tree = make_tree(parents, 1, 83)
        dev = make_noisy_device()
        pool = dev.make_tree_cache_pool(tree)
        data = run_tree_fragments(tree, dev, shots=100, seed=1, pool=pool)
        assert data.num_variants == sum(
            len(tree_variant_tuples(tree, i))
            for i in range(tree.num_fragments)
        )
        for i, cache in enumerate(pool):
            frag = tree.fragments[i]
            assert cache.stats["transpiles"] == 1
            assert cache.stats["body_evolutions"] == 4**frag.num_prep
            expected_rot = 3**frag.num_meas if frag.num_meas else 0
            assert cache.stats["rotation_evolutions"] == expected_rot
        # re-serving the same variants costs nothing new
        run_tree_fragments(tree, dev, shots=100, seed=2, pool=pool)
        for cache in pool:
            assert cache.stats["transpiles"] == 1

    def test_exact_tree_data_rejects_noisy_pool(self):
        _, tree = make_tree(Y_PARENTS, 1, 84)
        noisy_pool = make_noisy_device().make_tree_cache_pool(tree)
        with pytest.raises(CutError):
            exact_tree_data(tree, pool=noisy_pool)

    def test_exact_tree_data_rejects_foreign_tree_pool(self):
        _, tree_a = make_tree(Y_PARENTS, 1, 85)
        _, tree_b = make_tree(Y_PARENTS, 1, 86)
        pool_a = IdealBackend().make_tree_cache_pool(tree_a)
        with pytest.raises(CutError):
            exact_tree_data(tree_b, pool=pool_a)


# ---------------------------------------------------------------------------
# batched stacked-rotation warm path (satellite)
# ---------------------------------------------------------------------------


class TestBatchedRotations:
    @pytest.mark.parametrize("parents,cuts", [(Y_PARENTS, 1), ([0], 3)])
    def test_batched_equals_per_setting(self, parents, cuts):
        qc, specs = tree_cut_circuit(
            parents, cuts, fresh_per_fragment=2, depth=2, seed=91
        )
        tree = partition_tree(qc, specs)
        for frag in tree.fragments:
            if not frag.num_meas:
                continue
            settings = upstream_setting_tuples(frag.num_meas)
            lazy = TreeFragmentSimCache(frag)
            banks_lazy = {
                s: np.array(lazy._rotated_columns(s)) for s in settings
            }
            batched = TreeFragmentSimCache(frag)
            batched.warm_rotations(settings)
            for s in settings:
                np.testing.assert_allclose(
                    batched._rotated[s], banks_lazy[s], atol=1e-12
                )

    def test_partial_pools_and_memoisation(self):
        _, tree = make_tree(Y_PARENTS, 1, 92)
        frag = tree.fragments[0]
        cache = TreeFragmentSimCache(frag)
        subset = [("X", "Z"), ("Y", "Z"), ("X", "Y")]
        cache.warm_rotations(subset)
        assert set(cache._rotated) >= set(subset)
        before = {s: cache._rotated[s] for s in subset}
        cache.warm_rotations(subset)  # second call is a no-op
        for s in subset:
            assert cache._rotated[s] is before[s]

    def test_invalid_setting_rejected(self):
        _, tree = make_tree(Y_PARENTS, 1, 93)
        cache = TreeFragmentSimCache(tree.fragments[0])
        with pytest.raises(CutError):
            cache.warm_rotations([("Q", "Z"), ("X", "Z")])
        with pytest.raises(CutError):
            cache.warm_rotations([("X",)])

    def test_warm_combos_uses_batched_path_and_serves_sampling(self):
        qc, tree = make_tree(Y_PARENTS, 1, 94)
        combos = [
            tree_variant_tuples(tree, i) for i in range(tree.num_fragments)
        ]
        dev = IdealBackend()
        pool = dev.make_tree_cache_pool(tree)
        pool.warm(combos)
        data = run_tree_fragments(
            tree, IdealBackend(exact=True), shots=2_000_000, seed=0, pool=pool
        )
        p = reconstruct_tree_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-5)


# ---------------------------------------------------------------------------
# tree variance model
# ---------------------------------------------------------------------------


class TestTreeVariance:
    def test_exact_data_has_zero_variance(self):
        from repro.cutting.variance import tree_reconstruction_variance

        _, tree = make_tree(FIVE_PARENTS, 1, 95)
        var = tree_reconstruction_variance(exact_tree_data(tree))
        assert var.shape == (1 << len(tree.output_order()),)
        np.testing.assert_array_equal(var, 0.0)

    def test_prediction_tracks_empirical_variance(self):
        from repro.cutting.variance import (
            tree_predicted_stddev_tv,
            tree_reconstruction_variance,
        )

        _, tree = make_tree(Y_PARENTS, 1, 96)
        dev = IdealBackend()
        shots = 400
        reps = []
        predicted = None
        for r in range(30):
            data = run_tree_fragments(
                tree, dev, shots=shots, seed=1000 + r,
                pool=dev.make_tree_cache_pool(tree),
            )
            reps.append(
                reconstruct_tree_distribution(data, postprocess="raw")
            )
            if predicted is None:
                predicted = tree_reconstruction_variance(data)
                assert tree_predicted_stddev_tv(data) > 0
        empirical = np.var(np.stack(reps), axis=0)
        ratio = predicted.sum() / empirical.sum()
        assert 0.3 < ratio < 3.0
