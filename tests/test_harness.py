"""Tests for the experiment harness (mini versions of each figure).

These assert the *shape* of each reproduced result: golden ≈ uncut accuracy
(Fig. 3), golden faster than standard (Figs. 4–5, with the paper's 1.5×
modeled device ratio), and the 4^{K_r}3^{K_g} scaling grid (§II-B).
"""

import numpy as np
import pytest

from repro.harness import (
    format_table,
    run_fig3,
    run_fig4,
    run_fig5,
    run_scaling,
    run_trials,
    trial_seeds,
)


class TestTrialPlumbing:
    def test_seeds_deterministic(self):
        assert trial_seeds(7, 5) == trial_seeds(7, 5)
        assert trial_seeds(7, 5) != trial_seeds(8, 5)

    def test_run_trials_passes_index_and_seed(self):
        log = run_trials(lambda i, s: (i, s), 4, seed=1)
        assert [x[0] for x in log] == [0, 1, 2, 3]
        assert len({x[1] for x in log}) == 4


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(sizes=(5,), trials=4, shots=6000, seed=3)

    def test_all_series_present(self, result):
        labels = [s.label for s in result.stats]
        assert any("uncut" in l and "d_w" in l for l in labels)
        assert any("golden cut" in l and "d_w" in l for l in labels)

    def test_distances_positive(self, result):
        for s in result.stats:
            assert s.mean >= 0.0

    def test_paper_shape_golden_comparable_to_uncut(self, result):
        """Fig. 3's finding: cut accuracy ≈ uncut accuracy (same order)."""
        by = result.by_label()
        uncut = by["5q uncut on hardware (d_w)"].mean
        cut = by["5q golden cut on hardware (d_w)"].mean
        assert cut < 20 * max(uncut, 1e-6)

    def test_rows_renderable(self, result):
        table = format_table(result.rows())
        assert "mean" in table


class TestFig4:
    def test_golden_faster(self):
        r = run_fig4(trials=8, shots=400, seed=11)
        assert r.speedup > 1.0
        assert r.golden.mean < r.standard.mean

    def test_rows(self):
        r = run_fig4(trials=3, shots=200, seed=12)
        rows = r.rows()
        assert len(rows) == 3


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(trials=4, shots=1000, seed=13)

    def test_modeled_ratio_matches_paper(self, result):
        """paper: 18.84 / 12.61 ≈ 1.49; our model: exactly 1.5."""
        assert result.speedup == pytest.approx(1.5, rel=0.05)

    def test_absolute_seconds_ballpark(self, result):
        assert 14 < result.standard.mean < 24
        assert 9 < result.golden.mean < 16

    def test_execution_counts(self, result):
        # per trial: 9 vs 6 variants x 1000 shots
        assert result.executions_standard == 4 * 9000
        assert result.executions_golden == 4 * 6000


class TestScaling:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_scaling(max_cuts=2, depth=2, seed=5, repeats=1)

    def test_grid_complete(self, rows):
        combos = {(r["K"], r["K_golden"]) for r in rows}
        assert combos == {(1, 0), (1, 1), (2, 0), (2, 1), (2, 2)}

    def test_formula_columns(self, rows):
        for r in rows:
            K, kg = r["K"], r["K_golden"]
            assert r["rows(4^Kr*3^Kg)"] == 4 ** (K - kg) * 3**kg
            assert r["variants"] == 3 ** (K - kg) * 2**kg + 6 ** (K - kg) * 4**kg

    def test_golden_reduces_reconstruction_time(self):
        rows = run_scaling(max_cuts=3, depth=2, seed=6, repeats=3)
        k3 = {r["K_golden"]: r["reconstruct_ms"] for r in rows if r["K"] == 3}
        assert k3[3] < k3[0]  # all-golden strictly cheaper than none


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.333333}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_empty(self):
        assert "(no rows)" in format_table([])
