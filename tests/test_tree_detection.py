"""Per-group golden detection on fragment trees — root-to-leaves sweep.

The tree generalisation of the Definition-1 machinery must be

* **exact**: ``tree_definition1_deviation`` equals a brute-force loop over
  (prep context × setting × outcome) in the source node's flat cut layout,
  and is exactly 0 on analytically golden constructions;
* **conditional**: the root-to-leaves BFS conditions every node's prep
  contexts on its *parent* group's committed neglect (real trees are
  jointly Y-golden only because the parent drops its Y rows);
* **branch-aware**: a node with two child groups verdicts both from one
  pilot, and each group's deviation is maximised over the sibling group's
  settings too;
* **calibrated** (acceptance): ``cut_and_run_tree(golden="detect")``
  passes a seeded Monte-Carlo calibration on a planted-golden tree —
  planted bases are essentially never rejected, informative ones are
  flagged, and detect reproduces known-mode pools;
* **cheap**: pilot + production share the backend pool, so an N-node tree
  still costs exactly N body transpiles in detect mode.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import IdealBackend
from repro.core.detection import detect_tree_golden_bases
from repro.core.golden import (
    find_tree_golden_bases_analytic,
    tree_definition1_deviation,
)
from repro.core.neglect import spanning_init_tuples, tree_pilot_combos
from repro.core.pipeline import cut_and_run_tree
from repro.cutting.execution import exact_tree_data, run_tree_fragments
from repro.cutting.tree import partition_tree
from repro.cutting.variants import upstream_setting_tuples
from repro.exceptions import CutError, DetectionError
from repro.harness.scaling import golden_tree_circuit, tree_cut_circuit
from repro.metrics import total_variation
from repro.sim import simulate_statevector

#: calibration workload: a 5-node two-level tree (root → {1, 2}, node 1 →
#: {3, 4} in builder numbering), groups 0, 2 and 3 planted X/Y-golden, the
#: remaining group regular with analytically verified deviations (asserted
#: below).
_CAL_PARENTS = [0, 0, 1, 1]
_CAL_PLANTED = (0, 2, 3)
_CAL_SEED = 1
_ALPHA = 1e-3
_PILOT = 2000


def _calibration_tree():
    qc, specs, planted = golden_tree_circuit(
        _CAL_PARENTS,
        planted_groups=_CAL_PLANTED,
        fresh_per_fragment=3,
        seed=_CAL_SEED,
    )
    return qc, specs, planted


def _node_pilot_data(tree, node, contexts, shots=0, backend=None, seed=0):
    """Exact (shots=0) or sampled single-node data covering all its groups."""
    combos = [
        (a, s)
        for a in contexts
        for s in upstream_setting_tuples(tree.fragments[node].num_meas)
    ]
    variants = [None] * tree.num_fragments
    variants[node] = combos
    if shots:
        return run_tree_fragments(
            tree, backend, shots=shots, variants=variants, seed=seed
        )
    return exact_tree_data(tree, variants=variants)


def _brute_force_deviation(data, group, cut, basis):
    """Reference semantics: a Python loop over every context of the
    group's source node, addressing the cut in the flat layout."""
    tree = data.tree
    src = tree.group_src[group]
    frag = tree.fragments[src]
    flat = frag.group_offset(group) + cut
    K = frag.num_meas
    worst = 0.0
    for (inits, setting), A in data.records[src].items():
        if setting[flat] != basis:
            continue
        for b_out in range(A.shape[0]):
            for r in range(1 << K):
                if (r >> flat) & 1:
                    continue
                worst = max(
                    worst, abs(A[b_out, r] - A[b_out, r | (1 << flat)])
                )
    return worst


class TestTreeDeviation:
    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_branching_node_matches_brute_force(self, seed):
        """The flat-layout deviation equals the brute-force loop at a node
        with two child groups (sibling settings in the context family)."""
        qc, specs = tree_cut_circuit(
            [0, 0], 1, fresh_per_fragment=2, depth=2, seed=seed
        )
        tree = partition_tree(qc, specs)
        root = tree.fragments[0]
        assert len(root.meas_groups) == 2
        data = _node_pilot_data(tree, 0, [()])
        for g in root.meas_groups:
            for cut in range(tree.group_sizes[g]):
                for basis in ("X", "Y", "Z"):
                    fast = tree_definition1_deviation(data, g, cut, basis)
                    slow = _brute_force_deviation(data, g, cut, basis)
                    assert fast == pytest.approx(slow, abs=1e-9)

    def test_zero_on_planted_groups(self):
        qc, specs, _ = _calibration_tree()
        tree = partition_tree(qc, specs)
        for g in _CAL_PLANTED:
            src = tree.group_src[g]
            frag = tree.fragments[src]
            contexts = (
                spanning_init_tuples(frag.num_prep)
                if frag.num_prep
                else [()]
            )
            data = _node_pilot_data(tree, src, contexts)
            for basis in ("X", "Y"):
                assert tree_definition1_deviation(data, g, 0, basis) == 0.0

    def test_out_of_range_rejected(self):
        qc, specs, _ = _calibration_tree()
        tree = partition_tree(qc, specs)
        data = _node_pilot_data(tree, 0, [()])
        with pytest.raises(DetectionError, match="out of range"):
            tree_definition1_deviation(data, 99, 0, "X")
        with pytest.raises(DetectionError, match="out of range"):
            tree_definition1_deviation(data, 0, 5, "X")
        with pytest.raises(DetectionError):
            tree_definition1_deviation(data, 0, 0, "Q")


class TestAnalyticTreeFinder:
    def test_planted_groups_found(self):
        qc, specs, planted = _calibration_tree()
        tree = partition_tree(qc, specs)
        found, selected = find_tree_golden_bases_analytic(tree)
        for g in range(tree.num_groups):
            if g in _CAL_PLANTED:
                assert found[g][0] == ["X", "Y"]
                assert selected[g] == {0: ("X", "Y")}
            else:
                assert found[g][0] == []
                assert selected[g] is None

    def test_linear_tree_jointly_y_golden_via_conditioning(self):
        """A real-amplitude *linear* tree is jointly Y-golden: each
        group's verdict holds on contexts conditioned on the parent's
        committed neglect — identical to the chain sweep, since the BFS
        degenerates to left-to-right on one-child nodes."""
        from repro.core.golden import find_chain_golden_bases_analytic
        from repro.cutting.chain import partition_chain
        from repro.harness.scaling import chain_cut_circuit

        qc, specs = chain_cut_circuit(
            3, 1, fresh_per_fragment=2, depth=2, seed=23, real_blocks=True
        )
        tree = partition_tree(qc, specs)
        found, selected = find_tree_golden_bases_analytic(tree)
        for g in range(tree.num_groups):
            assert "Y" in found[g][0]
        chain_found, chain_sel = find_chain_golden_bases_analytic(
            partition_chain(qc, specs)
        )
        assert found == chain_found and selected == chain_sel

    def test_branching_node_is_conservative_about_sibling_contexts(self):
        """At a branching node the per-group deviation is maximised over
        the sibling group's settings too (including Y), so a generic
        real-amplitude root is *not* flagged pointwise Y-golden — the tree
        analogue of the chain's multi-cut-per-group convention.  Joint
        neglect of Y on every group remains exact regardless (pinned in
        ``test_tree_equivalence.py``)."""
        flagged = 0
        for seed in (23, 24, 25):
            qc, specs = tree_cut_circuit(
                [0, 0], 1, fresh_per_fragment=2, depth=2, seed=seed,
                real_blocks=True,
            )
            tree = partition_tree(qc, specs)
            found, _ = find_tree_golden_bases_analytic(tree)
            root = tree.fragments[0]
            for g in root.meas_groups:
                if "Y" in found[g][0]:
                    flagged += 1
        # a generic real root should fail the sibling-Y contexts for at
        # least one of the six (seed, group) candidates
        assert flagged < 6

    def test_one_evaluation_serves_sibling_groups(self):
        """A branching node's single exact evaluation verdicts every child
        group (the pilot-economy property the sweep relies on)."""
        qc, specs, _ = _calibration_tree()
        tree = partition_tree(qc, specs)
        branching = [
            f for f in tree.fragments if len(f.meas_groups) == 2
        ]
        assert branching
        frag = branching[0]
        combos = tree_pilot_combos(frag.num_prep, frag.num_meas, None)
        variants = [None] * tree.num_fragments
        variants[frag.index] = combos
        data = exact_tree_data(tree, variants=variants)
        for g in frag.meas_groups:
            # both groups are analysable from the same records
            tree_definition1_deviation(data, g, 0, "X")

    def test_shares_ideal_pool(self):
        qc, specs, _ = _calibration_tree()
        tree = partition_tree(qc, specs)
        backend = IdealBackend()
        pool = backend.make_tree_cache_pool(tree)
        found, _ = find_tree_golden_bases_analytic(tree, pool=pool)
        assert any(found[g][0] for g in _CAL_PLANTED)
        data = exact_tree_data(tree, pool=pool)
        assert data.num_variants > 0


class TestTreeDetectionCalibration:
    """Acceptance: seeded calibration of detect mode on a planted tree."""

    TRIALS = 40

    @pytest.fixture(scope="class")
    def verified_tree(self):
        """The calibration tree, with the regular groups' deviations
        analytically certified large enough for the pilot budget."""
        qc, specs, planted = _calibration_tree()
        tree = partition_tree(qc, specs)
        found, selected = find_tree_golden_bases_analytic(tree)
        for g in _CAL_PLANTED:
            assert selected[g] == {0: ("X", "Y")}
        for g in range(tree.num_groups):
            if g in _CAL_PLANTED:
                continue
            src = tree.group_src[g]
            frag = tree.fragments[src]
            prev = (
                selected[frag.in_group]
                if frag.in_group is not None
                else None
            )
            contexts = (
                spanning_init_tuples(frag.num_prep, prev)
                if frag.num_prep
                else [()]
            )
            data = _node_pilot_data(tree, src, contexts)
            for basis in ("X", "Y", "Z"):
                assert tree_definition1_deviation(data, g, 0, basis) > 0.25
        return qc, specs, planted

    def test_fwer_and_power(self, verified_tree):
        """Planted (group, basis) candidates are essentially never
        rejected (family-wise ≤ α); every informative basis is flagged in
        ≥ 90 % of trials."""
        qc, specs, planted = verified_tree
        backend = IdealBackend()
        golden_candidates = 0
        false_rejections = 0
        powered_trials = 0
        for trial in range(self.TRIALS):
            res = cut_and_run_tree(
                qc, backend, specs, shots=50, golden="detect",
                pilot_shots=_PILOT, alpha=_ALPHA, exploit_all=True,
                seed=trial,
            )
            all_informative_flagged = True
            for group_results in res.detection:
                for r in group_results:
                    if r.group in _CAL_PLANTED and r.basis in ("X", "Y"):
                        golden_candidates += 1
                        if not r.is_golden:
                            false_rejections += 1
                    elif r.is_golden:
                        all_informative_flagged = False
            powered_trials += 1 if all_informative_flagged else 0
        assert golden_candidates == self.TRIALS * 6  # X,Y × 3 planted groups
        assert false_rejections / golden_candidates <= _ALPHA
        assert powered_trials / self.TRIALS >= 0.9

    def test_detect_matches_known_pool_sizes(self, verified_tree):
        qc, specs, planted = verified_tree
        backend = IdealBackend()
        known = cut_and_run_tree(
            qc, backend, specs, shots=50, golden="known",
            golden_maps=planted, seed=0, exploit_all=True,
        )
        matches = 0
        trials = 20
        for trial in range(trials):
            det = cut_and_run_tree(
                qc, backend, specs, shots=50, golden="detect",
                pilot_shots=_PILOT, alpha=_ALPHA, exploit_all=True,
                seed=trial,
            )
            if (
                det.costs["variants_per_fragment"]
                == known.costs["variants_per_fragment"]
                and det.golden_used == known.golden_used
            ):
                matches += 1
        assert matches / trials >= 0.9

    def test_detect_beats_off_at_equal_total_shots(self, verified_tree):
        """Detect (pilot included) vs off at the same total execution
        budget: neglecting the planted bases buys more shots per kept
        variant *and* fewer variance terms, so the TV error must drop."""
        qc, specs, _ = verified_tree
        backend = IdealBackend()
        truth = simulate_statevector(qc).probabilities()
        tv_det = []
        totals = []
        for trial in range(5):
            det = cut_and_run_tree(
                qc, backend, specs, shots=600, golden="detect",
                pilot_shots=_PILOT, alpha=_ALPHA, exploit_all=True,
                seed=100 + trial,
            )
            tv_det.append(total_variation(det.probabilities, truth))
            totals.append(det.total_executions + det.pilot_executions)
        # give "off" the *same* total budget, spread over its variants
        off_count = cut_and_run_tree(
            qc, backend, specs, shots=10, golden="off", seed=0
        ).costs["num_variants"]
        shots_off = int(np.mean(totals)) // off_count
        assert shots_off * off_count >= np.mean(totals) * 0.9  # fair fight
        tv_off = [
            total_variation(
                cut_and_run_tree(
                    qc, backend, specs, shots=shots_off, golden="off",
                    seed=100 + trial,
                ).probabilities,
                truth,
            )
            for trial in range(5)
        ]
        assert np.mean(tv_det) < np.mean(tv_off)

    def test_leaves_never_pilot(self, verified_tree):
        qc, specs, _ = verified_tree
        res = cut_and_run_tree(
            qc, IdealBackend(), specs, shots=50, golden="detect",
            pilot_shots=200, seed=1,
        )
        tree = res.tree
        counts = res.costs["pilot_variants_per_fragment"]
        for i, frag in enumerate(tree.fragments):
            if frag.num_meas:
                assert counts[i] > 0
            else:
                assert counts[i] == 0

    def test_detect_shares_pool_n_transpile_law(self, verified_tree):
        """Pilot + production in detect mode still cost exactly N body
        transpiles on fake hardware."""
        import repro.transpile.pipeline as tp
        from repro.backends.fake_hardware import FakeHardwareBackend
        from repro.noise.model import NoiseModel
        from repro.transpile.coupling import CouplingMap

        qc, specs, _ = verified_tree
        dev = FakeHardwareBackend(
            CouplingMap.linear(7), NoiseModel(), name="law_7q"
        )
        calls = {"n": 0}
        original = tp.transpile

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        tp_mod = tp
        try:
            tp_mod.transpile = counting
            import repro.cutting.noisy_cache as nc

            nc_orig = nc.transpile
            nc.transpile = counting
            try:
                res = cut_and_run_tree(
                    qc, dev, specs, shots=60, golden="detect",
                    pilot_shots=100, seed=2,
                )
            finally:
                nc.transpile = nc_orig
        finally:
            tp_mod.transpile = original
        assert calls["n"] == res.tree.num_fragments


class TestTreeGoldenModeErrors:
    def _args(self):
        qc, specs, _ = _calibration_tree()
        return qc, IdealBackend(), specs

    def test_invalid_mode_names_all_modes(self):
        qc, backend, specs = self._args()
        with pytest.raises(CutError) as err:
            cut_and_run_tree(qc, backend, specs, golden="bogus")
        msg = str(err.value)
        assert '"off"/"known"/"analytic"/"detect"' in msg
        assert "bogus" in msg

    def test_known_requires_maps(self):
        qc, backend, specs = self._args()
        with pytest.raises(CutError, match="requires golden_maps"):
            cut_and_run_tree(qc, backend, specs, golden="known")
        with pytest.raises(CutError, match="one golden map"):
            cut_and_run_tree(
                qc, backend, specs, golden="known", golden_maps=[{0: "Y"}]
            )

    def test_analytic_mode_runs(self):
        qc, backend, specs = self._args()
        res = cut_and_run_tree(
            qc, backend, specs, shots=60, golden="analytic",
            exploit_all=True, seed=4,
        )
        for g in range(res.tree.num_groups):
            if g in _CAL_PLANTED:
                assert res.golden_used[g] == {0: ("X", "Y")}
            else:
                assert res.golden_used[g] is None

    def test_detect_rejects_exact_data(self):
        qc, specs, _ = _calibration_tree()
        tree = partition_tree(qc, specs)
        data = exact_tree_data(tree)
        with pytest.raises(DetectionError, match="finite-shot"):
            detect_tree_golden_bases(data, 0)

    def test_detect_group_out_of_range(self):
        qc, specs, _ = _calibration_tree()
        tree = partition_tree(qc, specs)
        backend = IdealBackend()
        data = _node_pilot_data(tree, 0, [()], shots=100, backend=backend)
        with pytest.raises(DetectionError, match="out of range"):
            detect_tree_golden_bases(data, 99)
