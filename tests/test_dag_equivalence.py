"""Equivalence of fragment-DAG cutting against brute-force references.

The PR that generalised fragment *trees* to fragment *DAGs* (joint
preparation groups in :mod:`repro.cutting.tree`, the searched
:class:`~repro.cutting.contraction.ContractionPlan` replacing the fixed
leaves-to-root order in :mod:`repro.cutting.reconstruction`) must be
exact physics plus a pure architecture change:

* :func:`partition_tree` must produce genuine DAG topologies — diamonds,
  multi-source double parents, branchy 5/6-fragment shapes — with
  joint-prep nodes whose flat ``prep_local`` is the group-ordered
  concatenation of the per-group entering wires;
* the planned network contraction has to match the brute-force reference
  (a Python row-loop over the full basis product across *all* cut
  groups) and the uncut statevector to ≤ 1e-9, over a hypothesis battery
  of random DAG topologies, full and neglected pools, every planner;
* noisy DAG data must be bit-identically reproducible (same seed → same
  records), mode-independent (serial == thread, ledgers agreeing in
  canonical form), and served under the N-transpile pool law extended to
  joint prep groups (one body transpile per node, ``4^{K_in,flat}`` body
  evolutions);
* **tree degeneracy**: on pure-tree inputs the DAG engine must keep
  routing through the historical kernels bit-identically
  (``plan=None``), and the network path with any searched plan must
  agree to ≤ 1e-9;
* the sparse/pruned network path must honour the rigorous L1 bound.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import IdealBackend
from repro.backends.fake_hardware import FakeHardwareBackend
from repro.core.neglect import reduced_bases
from repro.core.pipeline import cut_and_run_tree
from repro.cutting import partition_tree
from repro.cutting.contraction import (
    ContractionPlan,
    dp_plan,
    fixed_plan,
    greedy_plan,
    network_spec_for_tree,
)
from repro.cutting.execution import exact_tree_data, run_tree_fragments
from repro.cutting.reconstruction import (
    reconstruct_tree_distribution,
    reconstruct_tree_distribution_reference,
)
from repro.cutting.sparse import top_k
from repro.cutting.variants import tree_variant_tuples
from repro.exceptions import ReconstructionError
from repro.harness.scaling import dag_cut_circuit, tree_cut_circuit
from repro.metrics.distances import total_variation
from repro.noise.kraus import (
    amplitude_damping,
    depolarizing,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.sim import simulate_statevector
from repro.transpile.coupling import CouplingMap

TOL = 1e-9

#: named DAG topologies of the battery — ``edges[g] = (src, dst)`` per cut
#: group, exactly the :func:`repro.harness.scaling.dag_cut_circuit` input
DIAMOND = [(0, 1), (0, 2), (1, 3), (2, 3)]
MULTI_SOURCE = [(0, 2), (1, 2)]
BRANCHY5 = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]
SIX = [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)]
TOPOLOGIES = [DIAMOND, MULTI_SOURCE, BRANCHY5, SIX]

_slow = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def make_dag(edges, cuts_per_group=1, seed=0, **kwargs):
    qc, specs = dag_cut_circuit(
        edges, cuts_per_group, fresh_per_fragment=1, depth=2,
        seed=seed, **kwargs,
    )
    return qc, partition_tree(qc, specs)


def make_noisy_device(num_qubits: int = 8) -> FakeHardwareBackend:
    nm = NoiseModel()
    nm.add_gate_noise(["sx", "x", "rz"], depolarizing(2e-3))
    nm.add_gate_noise(["sx", "x"], amplitude_damping(1.5e-3))
    nm.add_gate_noise(["cx"], two_qubit_depolarizing(8e-3))
    for q in range(num_qubits):
        nm.add_readout_error(q, ReadoutError(p01=0.015, p10=0.03))
    return FakeHardwareBackend(
        CouplingMap.linear(num_qubits), nm, name="dag_test"
    )


def assert_records_identical(a, b):
    for ra, rb in zip(a.records, b.records):
        assert set(ra) == set(rb)
        for k in ra:
            np.testing.assert_array_equal(ra[k], rb[k])


# ---------------------------------------------------------------------------
# topology: partition_tree builds genuine DAGs
# ---------------------------------------------------------------------------


class TestDagPartition:
    def test_diamond_shape(self):
        _, tree = make_dag(DIAMOND, seed=401)
        assert tree.num_fragments == 4
        assert not tree.is_tree and not tree.is_chain
        sink = tree.fragments[3]
        assert sink.in_groups == [2, 3] and sink.num_parents == 2
        assert sink.in_group is None
        assert tree.parents(3) == [1, 2]
        # flat prep layout is the group-ordered concatenation
        assert sink.prep_local == [
            w for h in sink.in_groups for w in sink.prep_local_by_group[h]
        ]
        assert sink.prep_offset(3) == len(sink.prep_local_by_group[2])

    def test_multi_source_shape(self):
        """Two roots feeding one joint-prep sink — a DAG with no tree root."""
        _, tree = make_dag(MULTI_SOURCE, seed=402)
        assert tree.num_fragments == 3
        roots = [f for f in tree.fragments if f.num_parents == 0]
        assert len(roots) == 2
        sink = tree.fragments[2]
        assert sink.in_groups == [0, 1]

    @pytest.mark.parametrize("edges", [BRANCHY5, SIX])
    def test_wide_shapes(self, edges):
        _, tree = make_dag(edges, seed=403)
        assert tree.num_fragments == len({v for e in edges for v in e})
        assert not tree.is_tree
        assert sum(f.num_parents for f in tree.fragments) == len(edges)
        joint = [f for f in tree.fragments if f.num_parents > 1]
        assert joint  # every battery shape has at least one joint-prep node

    def test_multi_cut_joint_groups(self):
        _, tree = make_dag(DIAMOND, cuts_per_group=[1, 1, 2, 1], seed=404)
        assert tree.group_sizes == [1, 1, 2, 1]
        sink = tree.fragments[3]
        assert sink.num_prep == 3
        assert len(sink.prep_local_by_group[2]) == 2

    def test_tree_edges_still_build_trees(self):
        _, tree = make_dag([(0, 1), (0, 2), (1, 3)], seed=405)
        assert tree.is_tree

    def test_sibling_block_after_anchor(self):
        """Second cascade detection pass: the sibling group's upstream
        block sits *after* the first group's anchor (so it is not an
        anchor ancestor) and shares a wire with the root — a triangle
        interaction graph.  Plain absorption mis-attributes the frontier;
        the reserved-wire pass must co-cut the sibling instead."""
        from repro.circuits.circuit import Circuit
        from repro.cutting.cut import CutPoint, CutSpec

        qc = Circuit(3, name="triangle")
        for q in range(3):
            qc.h(q)
        qc.cx(0, 1)  # 3: edge (0,1), then cut wire 1
        qc.cx(0, 2)  # 4: edge (0,2) AFTER the anchor, then cut wire 2
        qc.cx(1, 2)  # 5: closing edge — wires from different fragments
        specs = [
            CutSpec((CutPoint(1, 3),)),
            CutSpec((CutPoint(2, 4),)),
        ]
        tree = partition_tree(qc, specs)
        assert not tree.is_tree
        sink = tree.fragments[-1]
        assert sink.in_groups == [0, 1]
        data = exact_tree_data(tree)
        np.testing.assert_allclose(
            reconstruct_tree_distribution(data),
            simulate_statevector(qc).probabilities(),
            atol=TOL,
        )


# ---------------------------------------------------------------------------
# exact equivalence: planned contraction vs reference vs statevector
# ---------------------------------------------------------------------------


class TestDagExactEquivalence:
    @_slow
    @given(
        topo=st.sampled_from(TOPOLOGIES),
        seed=st.integers(0, 10**6),
        real=st.booleans(),
    )
    def test_planned_contraction_matches_truth_and_reference(
        self, topo, seed, real
    ):
        """Property battery: on a random DAG topology the auto-planned
        network contraction equals the uncut statevector *and* the
        brute-force row-loop over the full cross-group basis product."""
        qc, tree = make_dag(topo, seed=seed, real_blocks=real)
        truth = simulate_statevector(qc).probabilities()
        data = exact_tree_data(tree)
        probs = reconstruct_tree_distribution(data)
        ref = reconstruct_tree_distribution_reference(data)
        np.testing.assert_allclose(probs, truth, atol=TOL)
        np.testing.assert_allclose(probs, ref, atol=TOL)

    @pytest.mark.parametrize("method", ["fixed", "greedy", "dp", "auto"])
    def test_every_planner_agrees(self, method):
        qc, tree = make_dag(BRANCHY5, seed=406)
        data = exact_tree_data(tree)
        auto = reconstruct_tree_distribution(data)
        probs = reconstruct_tree_distribution(data, plan=method)
        np.testing.assert_allclose(probs, auto, atol=TOL)
        np.testing.assert_allclose(
            probs, simulate_statevector(qc).probabilities(), atol=TOL
        )

    def test_explicit_plan_object(self):
        _, tree = make_dag(DIAMOND, seed=407)
        data = exact_tree_data(tree)
        plan = dp_plan(network_spec_for_tree(tree))
        probs = reconstruct_tree_distribution(data, plan=plan)
        np.testing.assert_allclose(
            probs, reconstruct_tree_distribution(data), atol=TOL
        )

    def test_wrong_sized_plan_rejected(self):
        _, tree = make_dag(DIAMOND, seed=407)
        data = exact_tree_data(tree)
        bad = ContractionPlan(num_nodes=3, steps=((0, 1), (0, 2)))
        with pytest.raises(ReconstructionError):
            reconstruct_tree_distribution(data, plan=bad)

    def test_multi_cut_diamond(self):
        """Joint prep groups of width > 1: the flat entering axis splits
        into per-group row axes of unequal length."""
        qc, tree = make_dag(DIAMOND, cuts_per_group=[1, 1, 2, 1], seed=408)
        data = exact_tree_data(tree)
        probs = reconstruct_tree_distribution(data)
        np.testing.assert_allclose(
            probs, simulate_statevector(qc).probabilities(), atol=TOL
        )
        np.testing.assert_allclose(
            probs, reconstruct_tree_distribution_reference(data), atol=TOL
        )

    def test_neglected_pools_consistent(self):
        """Reduced per-group pools slice the same rows on the planned path
        and the reference row-loop (joint groups included)."""
        _, tree = make_dag(DIAMOND, seed=409)
        golden = [None] * tree.num_groups
        golden[2] = {0: "Y"}
        golden[0] = {0: ("X",)}
        bases = [
            reduced_bases(k, gm) if gm else [("I", "X", "Y", "Z")] * k
            for k, gm in zip(tree.group_sizes, golden)
        ]
        data = exact_tree_data(tree)
        probs = reconstruct_tree_distribution(data, bases=bases)
        ref = reconstruct_tree_distribution_reference(data, bases=bases)
        np.testing.assert_allclose(probs, ref, atol=TOL)


# ---------------------------------------------------------------------------
# sparse/pruned network path
# ---------------------------------------------------------------------------


class TestDagPruned:
    def test_top_k_all_matches_dense(self):
        qc, tree = make_dag(DIAMOND, seed=410)
        data = exact_tree_data(tree)
        dense = reconstruct_tree_distribution(data)
        sd = reconstruct_tree_distribution(data, prune=top_k(dense.size))
        assert sd.prune_bound == 0.0
        np.testing.assert_allclose(sd.to_dense(), dense, atol=TOL)

    def test_prune_bound_is_rigorous(self):
        _, tree = make_dag(BRANCHY5, seed=411)
        data = exact_tree_data(tree)
        dense = reconstruct_tree_distribution(data, postprocess="raw")
        sd = reconstruct_tree_distribution(
            data, prune=top_k(4), postprocess="raw"
        )
        dropped = np.abs(dense - sd.to_dense()).sum()
        assert dropped <= sd.prune_bound + TOL


# ---------------------------------------------------------------------------
# noisy DAG execution: determinism, mode-independence, pool law
# ---------------------------------------------------------------------------


class TestDagNoisy:
    def test_same_seed_bit_identical(self):
        _, tree = make_dag(DIAMOND, seed=412)
        dev = make_noisy_device()
        a = run_tree_fragments(tree, dev, shots=200, seed=7)
        b = run_tree_fragments(tree, make_noisy_device(), shots=200, seed=7)
        assert_records_identical(a, b)
        pa = reconstruct_tree_distribution(a)
        pb = reconstruct_tree_distribution(b)
        assert np.array_equal(pa, pb)

    def test_noisy_planned_matches_reference(self):
        _, tree = make_dag(MULTI_SOURCE, seed=413)
        data = run_tree_fragments(
            tree, make_noisy_device(), shots=400, seed=9
        )
        probs = reconstruct_tree_distribution(data)
        ref = reconstruct_tree_distribution_reference(data)
        np.testing.assert_allclose(probs, ref, atol=TOL)

    def test_serial_equals_thread(self):
        """Mode-independence extends to joint-prep DAGs: worker count and
        thread scheduling never leak into the records."""
        from repro.parallel import run_tree_fragments_parallel

        _, tree = make_dag(DIAMOND, seed=414)
        runs = {
            mode: run_tree_fragments_parallel(
                tree, IdealBackend, shots=300, seed=5, mode=mode,
                max_workers=4,
            )
            for mode in ("serial", "thread")
        }
        assert_records_identical(runs["serial"], runs["thread"])

    def test_retry_ledgers_agree_canonically(self):
        from repro.backends import FaultInjectionBackend, FaultPlan
        from repro.cutting import AttemptLedger, RetryPolicy
        from repro.parallel import run_tree_fragments_parallel

        _, tree = make_dag(MULTI_SOURCE, seed=415)
        plan = FaultPlan(
            seed=3, transient_rate=0.3, max_consecutive_transients=2
        )
        clean = run_tree_fragments_parallel(
            tree, IdealBackend, shots=200, seed=6, mode="serial"
        )
        ledgers, runs = {}, {}
        for mode in ("serial", "thread"):
            ledgers[mode] = AttemptLedger()
            runs[mode] = run_tree_fragments_parallel(
                tree,
                lambda: FaultInjectionBackend(IdealBackend(), plan),
                shots=200,
                seed=6,
                mode=mode,
                max_workers=4,
                retry=RetryPolicy(max_attempts=4),
                ledger=ledgers[mode],
            )
        assert_records_identical(clean, runs["serial"])
        assert_records_identical(clean, runs["thread"])
        assert ledgers["serial"].canonical() == ledgers["thread"].canonical()

    def test_pool_law_extends_to_joint_prep(self):
        """The N-transpile law on a DAG: one body transpile per node and
        ``4^{K_in,flat}`` body evolutions — the joint node's flat entering
        width is the *product* over its entering groups."""
        _, tree = make_dag(DIAMOND, seed=416)
        dev = make_noisy_device()
        pool = dev.make_tree_cache_pool(tree)
        data = run_tree_fragments(tree, dev, shots=100, seed=1, pool=pool)
        assert data.num_variants == sum(
            len(tree_variant_tuples(tree, i))
            for i in range(tree.num_fragments)
        )
        sink = tree.fragments[3]
        assert sink.num_prep == sum(
            tree.group_sizes[h] for h in sink.in_groups
        )
        for i, cache in enumerate(pool):
            frag = tree.fragments[i]
            assert cache.stats["transpiles"] == 1
            assert cache.stats["body_evolutions"] == 4**frag.num_prep
        # re-serving the same variants costs nothing new
        run_tree_fragments(tree, dev, shots=100, seed=2, pool=pool)
        for cache in pool:
            assert cache.stats["transpiles"] == 1


# ---------------------------------------------------------------------------
# tree degeneracy: the DAG engine must not disturb pure-tree runs
# ---------------------------------------------------------------------------


class TestTreeDegeneracy:
    def _tree(self, seed=417):
        qc, specs = tree_cut_circuit(
            [0, 0, 1], 1, fresh_per_fragment=2, depth=2, seed=seed
        )
        return qc, partition_tree(qc, specs)

    def test_default_plan_is_historical_kernel(self):
        """``plan=None`` on a tree routes to the pre-DAG kernels — the
        result is bit-identical (array_equal), not merely close."""
        from repro.cutting.reconstruction import (
            _contract_tree,
            _resolve_plan,
            build_tree_fragment_tensor,
        )
        from repro.utils.bits import permute_probability_axes

        _, tree = self._tree()
        assert _resolve_plan(tree, None, None) is None
        data = exact_tree_data(tree)
        tensors = [
            build_tree_fragment_tensor(data, i)[0]
            for i in range(tree.num_fragments)
        ]
        vec, order = _contract_tree(tensors, tree)
        expected = permute_probability_axes(
            vec / float(1 << tree.total_cuts), order
        )
        raw = reconstruct_tree_distribution(data, postprocess="raw")
        assert np.array_equal(raw, expected)

    @pytest.mark.parametrize("method", ["fixed", "greedy", "dp"])
    def test_network_path_agrees_on_trees(self, method):
        qc, tree = self._tree()
        data = exact_tree_data(tree)
        np.testing.assert_allclose(
            reconstruct_tree_distribution(data, plan=method),
            reconstruct_tree_distribution(data),
            atol=TOL,
        )

    def test_noisy_tree_run_unchanged_by_dag_engine(self):
        """Same-seed noisy tree data and its default reconstruction stay
        bit-identically reproducible (RNG streams untouched)."""
        _, tree = self._tree(seed=418)
        a = run_tree_fragments(
            tree, make_noisy_device(), shots=150, seed=11
        )
        b = run_tree_fragments(
            tree, make_noisy_device(), shots=150, seed=11
        )
        assert_records_identical(a, b)
        assert np.array_equal(
            reconstruct_tree_distribution(a),
            reconstruct_tree_distribution(b),
        )


# ---------------------------------------------------------------------------
# acceptance: end-to-end pipeline on a DAG the seed engine rejected
# ---------------------------------------------------------------------------


class TestDagPipeline:
    @pytest.mark.parametrize("plan", [None, "dp"])
    def test_cut_and_run_tree_on_dag(self, plan):
        """A dense-graph cut (diamond fragment connectivity — cyclic as an
        undirected graph, so no tree decomposition exists) runs end to end
        and lands within the predicted TV bound."""
        qc, specs = dag_cut_circuit(
            DIAMOND, 1, fresh_per_fragment=1, depth=2, seed=419,
            real_blocks=True,
        )
        truth = simulate_statevector(qc).probabilities()
        result = cut_and_run_tree(
            qc, IdealBackend(), specs, shots=4000, seed=23, plan=plan
        )
        assert not result.tree.is_tree
        measured = total_variation(
            np.asarray(result.probabilities), truth
        )
        assert measured <= result.tv_bound()
        assert measured <= 0.2

    def test_search_scores_dag_candidates(self):
        """``topology="dag"`` lifts the is-tree feasibility filter, so the
        cost objective can score DAG spec sets; found specs still replay
        through ``partition_tree``."""
        from repro.cutting.search import find_cut_specs
        from repro.exceptions import CutError

        qc, _ = dag_cut_circuit(
            BRANCHY5, 1, fresh_per_fragment=2, depth=2, seed=421
        )
        specs = find_cut_specs(qc, qc.num_qubits - 1, topology="dag")
        tree = partition_tree(qc, specs)
        assert all(
            f.num_qubits <= qc.num_qubits - 1 for f in tree.fragments
        )
        with pytest.raises(CutError, match="topology"):
            find_cut_specs(qc, 4, topology="forest")

    def test_exact_backend_recovers_truth(self):
        qc, specs = dag_cut_circuit(
            SIX, 1, fresh_per_fragment=1, depth=2, seed=420
        )
        truth = simulate_statevector(qc).probabilities()
        tree = partition_tree(qc, specs)
        data = exact_tree_data(tree)
        np.testing.assert_allclose(
            reconstruct_tree_distribution(data), truth, atol=TOL
        )
