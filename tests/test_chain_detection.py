"""Per-group golden detection for fragment chains — statistical calibration.

The chain generalisation of the Definition-1 machinery must be

* **exact**: ``chain_definition1_deviation`` equals a brute-force loop over
  (prep context × setting × outcome) and is exactly 0 on analytically
  golden constructions (hypothesis-driven);
* **conditional**: the analytic sweep finds joint goldenness a pointwise
  per-group test cannot (real chains are Y-golden only *because* the
  previous group neglects Y);
* **calibrated**: over many seeded pilot trials, planted golden bases are
  essentially never rejected (family-wise false-rejection rate ≤ α) while
  truly informative bases are flagged with power ≥ 0.9 at the benchmarked
  pilot budget;
* **profitable**: ``golden="detect"`` matches ``golden="known"`` pool
  sizes in ≥ 90 % of trials and beats ``golden="off"`` TV error at equal
  total shots, while the whole pilot+production pipeline still costs
  exactly N body transpiles (law pinned in
  ``test_noisy_fast_path_equivalence.py``).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import IdealBackend
from repro.backends.devices import fake_device
from repro.core.detection import detect_chain_golden_bases
from repro.core.golden import (
    chain_definition1_deviation,
    find_chain_golden_bases_analytic,
    select_all_golden,
)
from repro.core.neglect import spanning_init_tuples
from repro.core.pipeline import cut_and_run_chain
from repro.cutting.chain import partition_chain
from repro.cutting.execution import exact_chain_data, run_chain_fragments
from repro.cutting.shots import allocate_chain_pilot_shots
from repro.cutting.variants import upstream_setting_tuples
from repro.exceptions import CutError, DetectionError
from repro.harness.scaling import chain_cut_circuit, golden_chain_circuit
from repro.metrics import total_variation
from repro.sim import simulate_statevector

#: calibration workload: 4-fragment chain, groups 0 and 1 planted X/Y-golden,
#: group 2 regular with analytically verified deviations ≥ 0.4 in every basis
#: (asserted below before the statistics rely on it).
_CAL_SEED = 13
_ALPHA = 1e-3
_PILOT = 2000


def _calibration_chain():
    qc, specs, planted = golden_chain_circuit(
        4, planted_groups=(0, 1), seed=_CAL_SEED
    )
    return qc, specs, planted


def _group_pilot_data(chain, group, contexts, shots=0, backend=None, seed=0):
    """Exact (shots=0) or sampled single-fragment data for one cut group."""
    combos = [
        (a, s)
        for a in contexts
        for s in upstream_setting_tuples(chain.fragments[group].num_meas)
    ]
    variants = [None] * chain.num_fragments
    variants[group] = combos
    if shots:
        return run_chain_fragments(
            chain, backend, shots=shots, variants=variants, seed=seed
        )
    return exact_chain_data(chain, variants=variants)


def _brute_force_deviation(data, group, cut, basis):
    """Reference semantics: a Python loop over every context."""
    K = data.chain.group_sizes[group]
    worst = 0.0
    for (inits, setting), A in data.records[group].items():
        if setting[cut] != basis:
            continue
        for b_out in range(A.shape[0]):
            for r in range(1 << K):
                if (r >> cut) & 1:
                    continue
                worst = max(
                    worst, abs(A[b_out, r] - A[b_out, r | (1 << cut)])
                )
    return worst


class TestChainDeviation:
    """Satellite: vectorised chain deviation == brute force, 0 on golden."""

    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_interior_matches_brute_force(self, seed):
        qc, specs = chain_cut_circuit(
            3, 1, fresh_per_fragment=2, depth=2, seed=seed
        )
        chain = partition_chain(qc, specs)
        # interior fragment (group 1's upstream side) over the full 6^K
        # physical context pool times all settings
        from repro.cutting.variants import downstream_init_tuples

        data = _group_pilot_data(chain, 1, downstream_init_tuples(1))
        for cut in range(chain.group_sizes[1]):
            for basis in ("X", "Y", "Z"):
                fast = chain_definition1_deviation(data, 1, cut, basis)
                slow = _brute_force_deviation(data, 1, cut, basis)
                assert fast == pytest.approx(slow, abs=1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_exactly_zero_on_planted_golden(self, seed):
        """X and Y deviations vanish identically on the planted group, for
        every entering preparation context (the unconditional plant)."""
        qc, specs, _ = golden_chain_circuit(3, planted_groups=(1,), seed=seed)
        chain = partition_chain(qc, specs)
        from repro.cutting.variants import downstream_init_tuples

        data = _group_pilot_data(chain, 1, downstream_init_tuples(1))
        assert chain_definition1_deviation(data, 1, 0, "X") == 0.0
        assert chain_definition1_deviation(data, 1, 0, "Y") == 0.0
        # Z reads the computational eigenstate: maximal information
        assert chain_definition1_deviation(data, 1, 0, "Z") > 0.1

    def test_first_group_matches_pair_notion(self):
        """Group 0's fragment has no prep side: the chain deviation equals
        the pair definition on the same upstream data."""
        from repro.core.golden import definition1_deviation
        from repro.cutting import bipartition
        from repro.cutting.execution import exact_fragment_data

        qc, specs, _ = golden_chain_circuit(3, planted_groups=(), seed=4)
        chain = partition_chain(qc, specs)
        data = _group_pilot_data(chain, 0, [()])
        pair = bipartition(qc, specs[0])
        pair_data = exact_fragment_data(pair, inits=[("Z+",)])
        for basis in ("X", "Y", "Z"):
            assert chain_definition1_deviation(
                data, 0, 0, basis
            ) == pytest.approx(
                definition1_deviation(pair_data, 0, basis), abs=1e-9
            )

    def test_error_paths(self):
        qc, specs, _ = golden_chain_circuit(3, seed=1)
        chain = partition_chain(qc, specs)
        data = _group_pilot_data(chain, 1, spanning_init_tuples(1))
        with pytest.raises(DetectionError):
            chain_definition1_deviation(data, 1, 0, "I")
        with pytest.raises(DetectionError):
            chain_definition1_deviation(data, 5, 0, "Y")
        with pytest.raises(DetectionError):
            chain_definition1_deviation(data, 1, 3, "Y")
        with pytest.raises(DetectionError):
            # fragment 0 was skipped in this partial pass: no variants
            chain_definition1_deviation(data, 0, 0, "Y")


class TestAnalyticChainFinder:
    def test_planted_groups_found(self):
        qc, specs, planted = _calibration_chain()
        chain = partition_chain(qc, specs)
        found, selected = find_chain_golden_bases_analytic(chain)
        assert found[0][0] == ["X", "Y"]
        assert found[1][0] == ["X", "Y"]
        assert found[2][0] == []
        assert selected == [{0: ("X", "Y")}, {0: ("X", "Y")}, None]

    def test_conditional_sweep_beats_pointwise(self):
        """A real-amplitude chain is jointly Y-golden, but only because the
        sweep conditions group 1's contexts on group 0's neglect: fed the
        full context pool (including Y rows) the same fragment is *not*
        Y-golden.  This is the multi-group analogue of the Bell-pair
        subtlety in the pair finder."""
        for seed in (21, 22, 23):
            qc, specs = chain_cut_circuit(
                3, 1, fresh_per_fragment=2, depth=2, seed=seed,
                real_blocks=True,
            )
            chain = partition_chain(qc, specs)
            found, selected = find_chain_golden_bases_analytic(chain)
            assert "Y" in found[0][0]
            assert "Y" in found[1][0]
            # pointwise over the unconditioned (full) context pool, Y at
            # group 1 must fail for at least one seed's Y⊗Y-type context
            data = _group_pilot_data(chain, 1, spanning_init_tuples(1))
            dev_full = chain_definition1_deviation(data, 1, 0, "Y")
            if dev_full > 1e-6:
                return
        pytest.fail("every real chain accidentally pointwise-golden")

    def test_selection_policy_conditions_contexts(self):
        """A custom selection that keeps everything (neglects nothing)
        widens the next group's context pool — and on a real chain that
        kills group 1's Y-goldenness."""
        for seed in (21, 22, 23):
            qc, specs = chain_cut_circuit(
                3, 1, fresh_per_fragment=2, depth=2, seed=seed,
                real_blocks=True,
            )
            chain = partition_chain(qc, specs)
            found_all, _ = find_chain_golden_bases_analytic(chain)
            found_none, selected_none = find_chain_golden_bases_analytic(
                chain, select=lambda found: {}
            )
            assert selected_none == [None, None]
            assert found_none[0] == found_all[0]  # group 0 unconditioned
            if found_none[1][0] != found_all[1][0]:
                assert "Y" not in found_none[1][0]
                return
        pytest.fail("selection policy never changed the verdict")

    def test_select_all_golden_helper(self):
        assert select_all_golden({0: ["X", "Y"], 1: []}) == {0: ("X", "Y")}
        assert select_all_golden({0: []}) == {}

    def test_shares_ideal_pool(self):
        """Passing the pipeline's ideal pool costs no extra body sims."""
        qc, specs, _ = _calibration_chain()
        chain = partition_chain(qc, specs)
        backend = IdealBackend()
        pool = backend.make_chain_cache_pool(chain)
        found, _ = find_chain_golden_bases_analytic(chain, pool=pool)
        assert found[2][0] == []
        # the pool now serves production reads from the same cached bodies
        data = exact_chain_data(chain, pool=pool)
        assert data.num_variants > 0


def _family_truth(planted_groups):
    """candidate (group, basis) → is it truly golden in the plant?"""

    def truly_golden(group, basis):
        return group in planted_groups and basis in ("X", "Y")

    return truly_golden


class TestDetectionCalibration:
    """Satellite: seeded Monte-Carlo calibration of the chain detector."""

    TRIALS = 80

    @pytest.fixture(scope="class")
    def verified_chain(self):
        """The calibration chain, with the regular group's deviations
        analytically certified large enough for the pilot budget."""
        qc, specs, planted = _calibration_chain()
        chain = partition_chain(qc, specs)
        found, selected = find_chain_golden_bases_analytic(chain)
        assert selected[:2] == [{0: ("X", "Y")}, {0: ("X", "Y")}]
        data = _group_pilot_data(
            chain, 2, spanning_init_tuples(1, selected[1])
        )
        for basis in ("X", "Y", "Z"):
            assert chain_definition1_deviation(data, 2, 0, basis) > 0.4
        return qc, specs, planted

    def test_fwer_and_power(self, verified_chain):
        """Family-wise false-rejection rate ≤ α; power ≥ 0.9.

        Trials are seeded, so the observed counts are deterministic; the
        assertions are the statistical contract they must stay within.
        With exactly-zero planted deviations the Bonferroni construction
        keeps per-candidate rejection probability ≤ α, and the certified
        ≥ 0.4 deviations give z ≈ 18 at 2000 pilot shots, so both margins
        are wide.
        """
        qc, specs, planted = verified_chain
        backend = IdealBackend()
        truly_golden = _family_truth((0, 1))
        golden_candidates = 0
        false_rejections = 0
        powered_trials = 0
        for trial in range(self.TRIALS):
            res = cut_and_run_chain(
                qc, backend, specs, shots=50, golden="detect",
                pilot_shots=_PILOT, alpha=_ALPHA, exploit_all=True,
                seed=trial,
            )
            all_informative_flagged = True
            for group_results in res.detection:
                for r in group_results:
                    if truly_golden(r.group, r.basis):
                        golden_candidates += 1
                        if not r.is_golden:
                            false_rejections += 1
                    elif r.is_golden:
                        all_informative_flagged = False
            powered_trials += 1 if all_informative_flagged else 0
        # family-wise false-rejection rate over all golden candidates
        assert golden_candidates == self.TRIALS * 4  # X,Y × 2 planted groups
        assert false_rejections / golden_candidates <= _ALPHA
        # power: every truly informative basis flagged, per trial
        assert powered_trials / self.TRIALS >= 0.9

    def test_detect_matches_known_pool_sizes(self, verified_chain):
        """Acceptance: ≥ 90 % of seeded trials reproduce the known-mode
        variant pools exactly (3-fragment sub-criterion covered by the
        dedicated test below)."""
        qc, specs, planted = verified_chain
        backend = IdealBackend()
        known = cut_and_run_chain(
            qc, backend, specs, shots=50, golden="known",
            golden_maps=planted, seed=0,
        )
        matches = 0
        for trial in range(40):
            det = cut_and_run_chain(
                qc, backend, specs, shots=50, golden="detect",
                pilot_shots=_PILOT, alpha=_ALPHA, exploit_all=True,
                seed=trial,
            )
            if (
                det.costs["variants_per_fragment"]
                == known.costs["variants_per_fragment"]
                and det.golden_used
                == [dict((k, tuple(v) if not isinstance(v, str) else (v,))
                         for k, v in gm.items()) if gm else None
                    for gm in planted]
            ):
                matches += 1
        assert matches >= 36  # ≥ 90 %

    def test_group_field_and_thresholds(self, verified_chain):
        qc, specs, _ = verified_chain
        res = cut_and_run_chain(
            qc, IdealBackend(), specs, shots=50, golden="detect",
            pilot_shots=500, seed=3,
        )
        assert [len(d) for d in res.detection] == [3, 3, 3]
        for g, group_results in enumerate(res.detection):
            for r in group_results:
                assert r.group == g
                assert r.threshold > 0 and 0 <= r.p_value <= 1.0
        # interior groups test more contexts than group 0 (prep contexts
        # multiply the Bonferroni family)
        m0 = max(r.num_contexts for r in res.detection[0])
        m1 = max(r.num_contexts for r in res.detection[1])
        assert m1 > m0


class TestDetectAcceptance:
    """Acceptance criteria on a 3-fragment planted chain."""

    SEED = 0  # golden_chain_circuit(3, (0, 1)) — verified in the fixture

    @pytest.fixture(scope="class")
    def chain3(self):
        qc, specs, planted = golden_chain_circuit(
            3, planted_groups=(0, 1), seed=self.SEED
        )
        chain = partition_chain(qc, specs)
        found, _ = find_chain_golden_bases_analytic(chain)
        assert found[0][0] == ["X", "Y"] and found[1][0] == ["X", "Y"]
        return qc, specs, planted

    def test_pool_sizes_match_known(self, chain3):
        qc, specs, planted = chain3
        backend = IdealBackend()
        known = cut_and_run_chain(
            qc, backend, specs, shots=100, golden="known",
            golden_maps=planted, seed=0,
        )
        matches = 0
        trials = 30
        for trial in range(trials):
            det = cut_and_run_chain(
                qc, backend, specs, shots=100, golden="detect",
                pilot_shots=_PILOT, alpha=_ALPHA, exploit_all=True,
                seed=trial,
            )
            matches += (
                det.costs["variants_per_fragment"]
                == known.costs["variants_per_fragment"]
            )
        assert matches / trials >= 0.9

    def test_beats_off_at_equal_total_shots(self, chain3):
        """Detect (pilot included) vs off at the same total execution
        budget: neglecting the planted bases buys more shots per kept
        variant *and* fewer variance terms, so the TV error must drop."""
        qc, specs, planted = chain3
        truth = simulate_statevector(qc).probabilities()
        backend = IdealBackend()
        shots_det = 600
        tv_det = []
        totals = []
        for trial in range(5):
            det = cut_and_run_chain(
                qc, backend, specs, shots=shots_det, golden="detect",
                pilot_shots=_PILOT, alpha=_ALPHA, exploit_all=True,
                seed=100 + trial,
            )
            tv_det.append(total_variation(det.probabilities, truth))
            totals.append(det.total_executions + det.pilot_executions)
        # give "off" the *same* total budget, spread over its variants
        off_count = cut_and_run_chain(
            qc, backend, specs, shots=10, golden="off", seed=0
        ).costs["num_variants"]
        shots_off = int(np.mean(totals)) // off_count
        assert shots_off * off_count >= np.mean(totals) * 0.9  # fair fight
        tv_off = [
            total_variation(
                cut_and_run_chain(
                    qc, backend, specs, shots=shots_off, golden="off",
                    seed=100 + trial,
                ).probabilities,
                truth,
            )
            for trial in range(5)
        ]
        assert np.mean(tv_det) < np.mean(tv_off)

    def test_detect_on_fake_hardware(self, chain3):
        """The sweep runs end-to-end on the noisy backend (the transpile
        law is pinned in test_noisy_fast_path_equivalence.py)."""
        qc, specs, planted = chain3
        dev = fake_device(qc.num_qubits)
        res = cut_and_run_chain(
            qc, dev, specs, shots=600, golden="detect", pilot_shots=2500,
            seed=2, exploit_all=True,
        )
        assert res.probabilities.sum() == pytest.approx(1.0, abs=1e-6)
        assert res.device_seconds > 0
        # the planted X/Y goldenness survives hardware noise: the wire
        # stays in a computational eigenstate through diagonal noise-free
        # virtual-rz gates, so at least one planted group is exploited
        assert any(gm for gm in res.golden_used)


class TestChainGoldenModeErrors:
    """Satellite: error-path coverage for cut_and_run_chain golden modes."""

    def _chain_args(self):
        qc, specs, _ = golden_chain_circuit(3, seed=2)
        return qc, IdealBackend(), specs

    def test_invalid_mode_string_names_all_modes(self):
        qc, backend, specs = self._chain_args()
        with pytest.raises(CutError) as err:
            cut_and_run_chain(qc, backend, specs, golden="bogus")
        msg = str(err.value)
        assert '"off"/"known"/"analytic"/"detect"' in msg
        assert "bogus" in msg

    def test_known_requires_maps(self):
        qc, backend, specs = self._chain_args()
        with pytest.raises(CutError, match="requires golden_maps"):
            cut_and_run_chain(qc, backend, specs, golden="known")

    def test_wrong_length_golden_maps(self):
        qc, backend, specs = self._chain_args()
        with pytest.raises(CutError, match="one golden map"):
            cut_and_run_chain(
                qc, backend, specs, golden="known", golden_maps=[{0: "Y"}]
            )
        with pytest.raises(CutError, match="one golden map"):
            cut_and_run_chain(
                qc, backend, specs, golden="known",
                golden_maps=[{0: "Y"}, None, {0: "Y"}],
            )

    def test_invalid_map_content_rejected_eagerly(self):
        qc, backend, specs = self._chain_args()
        with pytest.raises(CutError):
            cut_and_run_chain(
                qc, backend, specs, golden="known",
                golden_maps=[{0: "Q"}, None],
            )
        with pytest.raises(CutError):
            cut_and_run_chain(
                qc, backend, specs, golden="known",
                golden_maps=[{5: "Y"}, None],
            )

    def test_detect_requires_positive_pilot(self):
        qc, backend, specs = self._chain_args()
        with pytest.raises(CutError, match="pilot_shots"):
            cut_and_run_chain(
                qc, backend, specs, golden="detect", pilot_shots=0
            )


class TestPlumbing:
    """Spanning contexts, pilot allocation, and the fragment-skip path."""

    def test_spanning_init_tuples_sizes(self):
        assert len(spanning_init_tuples(1)) == 4
        assert len(spanning_init_tuples(2)) == 16
        assert spanning_init_tuples(1, {0: "Y"}) == [
            ("Z+",), ("Z-",), ("X+",)
        ]
        assert spanning_init_tuples(1, {0: ("X", "Y")}) == [("Z+",), ("Z-",)]
        # Z-golden keeps the full spanning pool (I still needs Z±)
        assert len(spanning_init_tuples(1, {0: "Z"})) == 4
        assert spanning_init_tuples(0) == [()]

    def test_spanning_tuples_span_the_pool(self):
        """Every standard preparation state is a real linear combination of
        the spanning states' density matrices — the linearity argument the
        pilot leans on."""
        from repro.cutting.cache import PREPARATION_AMPLITUDES

        def rho(code):
            v = PREPARATION_AMPLITUDES[code]
            return np.outer(v, v.conj())

        span = [rho(c) for (c,) in spanning_init_tuples(1)]
        A = np.stack([m.ravel() for m in span], axis=1)
        for code in ("X-", "Y-"):
            coef, res, *_ = np.linalg.lstsq(A, rho(code).ravel(), rcond=None)
            rebuilt = (A @ coef).reshape(2, 2)
            np.testing.assert_allclose(rebuilt, rho(code), atol=1e-12)
            np.testing.assert_allclose(coef.imag, 0, atol=1e-12)

    def test_chain_pilot_combos_is_the_shared_pool(self):
        """The analytic finder, the pilot sweep and the benches all probe
        chain_pilot_combos; pin its shape so they cannot drift."""
        from repro.core.neglect import chain_pilot_combos

        assert chain_pilot_combos(0, 1) == [((), ("X",)), ((), ("Y",)), ((), ("Z",))]
        assert len(chain_pilot_combos(1, 1)) == 4 * 3
        assert len(chain_pilot_combos(1, 1, {0: ("X", "Y")})) == 2 * 3
        assert chain_pilot_combos(1, 0) == [
            (a, ()) for a in spanning_init_tuples(1)
        ]
        # the detect pipeline's pilot counts must equal the shared pool's
        qc, specs, _ = golden_chain_circuit(3, planted_groups=(0,), seed=6)
        res = cut_and_run_chain(
            qc, IdealBackend(), specs, shots=100, golden="detect",
            pilot_shots=1500, seed=0, exploit_all=True,
        )
        chain = partition_chain(qc, specs)
        expected = [
            len(
                chain_pilot_combos(
                    chain.fragments[g].num_prep,
                    chain.fragments[g].num_meas,
                    res.golden_used[g - 1] if g else None,
                )
            )
            for g in range(chain.num_groups)
        ] + [0]
        assert res.costs["pilot_variants_per_fragment"] == expected

    def test_allocate_chain_pilot_shots(self):
        pilot, report = allocate_chain_pilot_shots([3, 12, 0], 1000)
        assert pilot == 250
        assert report["pilot_executions"] == 250 * 15
        assert report["pilot_variants_per_fragment"] == [3, 12, 0]
        pilot, _ = allocate_chain_pilot_shots([3, 12, 0], 100)
        assert pilot == 100  # floor
        pilot, report = allocate_chain_pilot_shots(
            [3, 0, 0], 1000, pilot_shots=77
        )
        assert pilot == 77 and report["pilot_executions"] == 231

    def test_allocate_chain_pilot_shots_errors(self):
        with pytest.raises(CutError):
            allocate_chain_pilot_shots([3], 1000)
        with pytest.raises(CutError):
            allocate_chain_pilot_shots([0, 0], 1000)
        with pytest.raises(CutError):
            allocate_chain_pilot_shots([3, -1], 1000)
        with pytest.raises(CutError):
            allocate_chain_pilot_shots([3, 3], 0)
        with pytest.raises(CutError):
            allocate_chain_pilot_shots([3, 3], 1000, pilot_shots=-5)

    def test_skip_plumbing(self):
        qc, specs, _ = golden_chain_circuit(3, seed=5)
        chain = partition_chain(qc, specs)
        combos = [((), s) for s in upstream_setting_tuples(1)]
        data = run_chain_fragments(
            chain, IdealBackend(), shots=200,
            variants=[combos, None, None], seed=0,
        )
        assert data.records[1] == {} and data.records[2] == {}
        assert data.metadata["variants_per_fragment"] == [3, 0, 0]
        assert data.num_variants == 3
        exact = exact_chain_data(chain, variants=[combos, None, None])
        assert exact.records[1] == {}

    def test_skip_plumbing_parallel(self):
        """The threaded executor honours skipped fragments too, and serial
        equals threaded on the partial pass."""
        from repro.parallel.executor import run_chain_fragments_parallel

        qc, specs, _ = golden_chain_circuit(3, seed=5)
        chain = partition_chain(qc, specs)
        combos = [((), s) for s in upstream_setting_tuples(1)]
        runs = {
            m: run_chain_fragments_parallel(
                chain, IdealBackend, shots=200,
                variants=[combos, None, None], seed=9, mode=m,
            )
            for m in ("serial", "thread")
        }
        for data in runs.values():
            assert data.records[1] == {} and data.records[2] == {}
            assert len(data.records[0]) == 3
        for key in runs["serial"].records[0]:
            np.testing.assert_array_equal(
                runs["serial"].records[0][key], runs["thread"].records[0][key]
            )

    def test_skip_everything_rejected(self):
        qc, specs, _ = golden_chain_circuit(3, seed=5)
        chain = partition_chain(qc, specs)
        with pytest.raises(CutError, match="skipped"):
            run_chain_fragments(
                chain, IdealBackend(), shots=200,
                variants=[None, None, None],
            )

    def test_empty_list_still_rejected(self):
        qc, specs, _ = golden_chain_circuit(3, seed=5)
        chain = partition_chain(qc, specs)
        combos = [((), s) for s in upstream_setting_tuples(1)]
        with pytest.raises(CutError, match="empty variant set"):
            run_chain_fragments(
                chain, IdealBackend(), shots=200,
                variants=[combos, [], None],
            )

    def test_detector_rejects_exact_data(self):
        qc, specs, _ = golden_chain_circuit(3, seed=5)
        chain = partition_chain(qc, specs)
        data = _group_pilot_data(chain, 0, [()])
        with pytest.raises(DetectionError, match="finite-shot"):
            detect_chain_golden_bases(data, 0)

    def test_detector_group_bounds(self):
        qc, specs, _ = golden_chain_circuit(3, seed=5)
        chain = partition_chain(qc, specs)
        data = _group_pilot_data(
            chain, 0, [()], shots=100, backend=IdealBackend()
        )
        with pytest.raises(DetectionError, match="out of range"):
            detect_chain_golden_bases(data, 7)
        with pytest.raises(DetectionError, match="out of range"):
            detect_chain_golden_bases(data, 0, cuts=[4])
