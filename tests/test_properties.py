"""Property-based tests (hypothesis) for the package's core invariants.

The headline property: **wire-cut reconstruction is exact** — for random
circuits, random cut positions and exact fragment data, the reconstructed
distribution equals the uncut simulation.  Everything else (simulator
unitarity, Pauli algebra closure, transpile equivalence, projection
geometry) guards the layers below it.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuits import Circuit, random_circuit
from repro.cutting import bipartition
from repro.cutting.execution import exact_fragment_data
from repro.cutting.reconstruction import project_to_simplex, reconstruct_distribution
from repro.core.golden import find_golden_bases_analytic
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.linalg.paulis import PauliString
from repro.sim import circuit_unitary, simulate_statevector
from repro.transpile import decompose_to_basis

from tests.helpers import phase_equal, two_block_circuit

_slow = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# the central invariant
# ---------------------------------------------------------------------------


@_slow
@given(seed=st.integers(0, 10_000), depth=st.integers(1, 4))
def test_cut_reconstruction_exact_single_cut(seed, depth):
    qc, spec = two_block_circuit(4, [0, 1], [1, 2, 3], depth=depth, seed=seed)
    pair = bipartition(qc, spec)
    data = exact_fragment_data(pair)
    p = reconstruct_distribution(data, postprocess="raw")
    truth = simulate_statevector(qc).probabilities()
    np.testing.assert_allclose(p, truth, atol=1e-8)


@_slow
@given(seed=st.integers(0, 10_000))
def test_cut_reconstruction_exact_two_cuts(seed):
    qc, spec = two_block_circuit(4, [0, 1, 2], [1, 2, 3], depth=2, seed=seed)
    pair = bipartition(qc, spec)
    data = exact_fragment_data(pair)
    p = reconstruct_distribution(data, postprocess="raw")
    truth = simulate_statevector(qc).probabilities()
    np.testing.assert_allclose(p, truth, atol=1e-8)


@_slow
@given(seed=st.integers(0, 10_000))
def test_golden_neglect_never_changes_exact_result(seed):
    """Whatever the analytic finder marks golden can be dropped for free."""
    qc, spec = two_block_circuit(
        4, [0, 1], [1, 2, 3], depth=2, seed=seed, real_upstream=True
    )
    pair = bipartition(qc, spec)
    found = find_golden_bases_analytic(pair)
    golden = {k: bs[0] for k, bs in found.items() if bs}
    if not golden:
        return  # nothing to neglect for this draw
    data = exact_fragment_data(
        pair,
        settings=reduced_setting_tuples(pair.num_cuts, golden),
        inits=reduced_init_tuples(pair.num_cuts, golden),
    )
    p = reconstruct_distribution(
        data, bases=reduced_bases(pair.num_cuts, golden), postprocess="raw"
    )
    truth = simulate_statevector(qc).probabilities()
    np.testing.assert_allclose(p, truth, atol=1e-8)


# ---------------------------------------------------------------------------
# simulator invariants
# ---------------------------------------------------------------------------


@_slow
@given(seed=st.integers(0, 10_000), n=st.integers(1, 4), depth=st.integers(1, 5))
def test_simulator_preserves_norm(seed, n, depth):
    qc = random_circuit(n, depth, seed=seed)
    probs = simulate_statevector(qc).probabilities()
    assert np.isclose(probs.sum(), 1.0, atol=1e-10)
    assert np.all(probs >= -1e-12)


@_slow
@given(seed=st.integers(0, 10_000), n=st.integers(1, 3))
def test_circuit_unitary_is_unitary(seed, n):
    qc = random_circuit(n, 3, seed=seed)
    u = circuit_unitary(qc)
    np.testing.assert_allclose(u.conj().T @ u, np.eye(1 << n), atol=1e-10)


@_slow
@given(seed=st.integers(0, 10_000), n=st.integers(1, 3))
def test_inverse_circuit_inverts(seed, n):
    qc = random_circuit(n, 3, seed=seed)
    u = circuit_unitary(qc)
    ui = circuit_unitary(qc.inverse())
    np.testing.assert_allclose(ui @ u, np.eye(1 << n), atol=1e-10)


@_slow
@given(seed=st.integers(0, 10_000))
def test_transpile_preserves_semantics(seed):
    qc = random_circuit(3, 3, seed=seed)
    dec = decompose_to_basis(qc)
    assert phase_equal(circuit_unitary(dec), circuit_unitary(qc), tol=1e-7)


# ---------------------------------------------------------------------------
# algebraic invariants
# ---------------------------------------------------------------------------

_pauli_label = st.text(alphabet="IXYZ", min_size=1, max_size=4)


@given(a=_pauli_label, b=_pauli_label)
def test_pauli_product_matches_matrices(a, b):
    if len(a) != len(b):
        return
    pa, pb = PauliString.from_label(a), PauliString.from_label(b)
    np.testing.assert_allclose(
        (pa * pb).to_matrix(), pa.to_matrix() @ pb.to_matrix(), atol=1e-10
    )


@given(a=_pauli_label, b=_pauli_label)
def test_pauli_commute_or_anticommute(a, b):
    if len(a) != len(b):
        return
    pa, pb = PauliString.from_label(a), PauliString.from_label(b)
    ab = pa.to_matrix() @ pb.to_matrix()
    ba = pb.to_matrix() @ pa.to_matrix()
    if pa.commutes_with(pb):
        np.testing.assert_allclose(ab, ba, atol=1e-10)
    else:
        np.testing.assert_allclose(ab, -ba, atol=1e-10)


@given(
    v=st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        min_size=2,
        max_size=32,
    )
)
def test_simplex_projection_feasible(v):
    p = project_to_simplex(np.array(v))
    assert np.isclose(p.sum(), 1.0, atol=1e-9)
    assert np.all(p >= -1e-12)


@given(
    v=st.lists(
        st.floats(min_value=-3, max_value=3, allow_nan=False),
        min_size=2,
        max_size=8,
    ),
    seed=st.integers(0, 1000),
)
def test_simplex_projection_idempotent(v, seed):
    p = project_to_simplex(np.array(v))
    np.testing.assert_allclose(project_to_simplex(p), p, atol=1e-9)
