"""Unit tests of the searched contraction-plan machinery.

Plans are pure shape objects (:class:`~repro.cutting.contraction
.NetworkSpec` → :class:`~repro.cutting.contraction.ContractionPlan`), so
the planners can be pinned on hand-built worst cases without any
fragment data:

* serialisation round-trips (dict and JSON) and loud validation of
  malformed step sequences;
* the cost model's FLOP ordering matches *measured* contraction timings
  on a bench-sized DAG (the committed perf claim of
  ``benchmarks/bench_dag_contraction.py`` in miniature);
* a hand-built network where greedy's locally-cheapest merge is globally
  wrong — DP must beat it, and DP must equal the brute-force optimum
  over every pairwise merge order;
* golden-reduced basis pools shrink the spec's edge rows, and the
  planners adapt.
"""

import itertools
import time

import numpy as np
import pytest

from repro.core.neglect import reduced_bases
from repro.cutting.contraction import (
    DP_MAX_NODES,
    ContractionPlan,
    NetworkSpec,
    dp_plan,
    fixed_plan,
    greedy_plan,
    network_spec_for_tree,
    plan_cost,
    search_plan,
)
from repro.cutting.tree import partition_tree
from repro.exceptions import ReconstructionError
from repro.harness.scaling import dag_cut_circuit, tree_cut_circuit

#: a path network 1—0—2—3 with one cheap edge (rows 4) and two expensive
#: ones (rows 256): greedy grabs the cheap (0, 1) merge first, which
#: inflates the cluster's output width to 16·16 before the expensive
#: edges are summed — the globally optimal order contracts the expensive
#: 2—3 edge first.  Hand-built worst case pinning greedy ≠ DP.
GREEDY_TRAP = NetworkSpec(
    num_nodes=4,
    edges=((0, 1, 4), (0, 2, 256), (2, 3, 256)),
    out_dims=(16, 16, 8, 8),
)


def brute_force_optimum(spec: NetworkSpec) -> float:
    """Exhaustive minimum cost over every pairwise merge sequence."""

    def open_of(members):
        return {
            g
            for g, (s, d, _) in enumerate(spec.edges)
            if (s in members) != (d in members)
        }

    def dim(members):
        return float(np.prod([spec.out_dims[m] for m in members]))

    best = [float("inf")]

    def recurse(clusters, cost):
        if len(clusters) == 1:
            best[0] = min(best[0], cost)
            return
        if cost >= best[0]:
            return
        for i, j in itertools.combinations(range(len(clusters)), 2):
            a, b = clusters[i], clusters[j]
            step = dim(a) * dim(b)
            for g in open_of(a) | open_of(b):
                step *= spec.edges[g][2]
            merged = tuple(
                a | b if k == i else c
                for k, c in enumerate(clusters)
                if k != j
            )
            recurse(merged, cost + step)

    recurse(tuple(frozenset({i}) for i in range(spec.num_nodes)), 0.0)
    return best[0]


class TestSerialisation:
    def test_dict_round_trip(self):
        plan = dp_plan(GREEDY_TRAP)
        again = ContractionPlan.from_dict(plan.to_dict())
        assert again == plan

    def test_json_round_trip(self):
        plan = greedy_plan(GREEDY_TRAP)
        again = ContractionPlan.from_json(plan.to_json())
        assert again.steps == plan.steps
        assert again.method == plan.method
        assert again.cost == plan.cost

    def test_validate_rejects_wrong_node_count(self):
        plan = ContractionPlan(num_nodes=3, steps=((0, 1), (0, 2)))
        with pytest.raises(ReconstructionError):
            plan.validate(4)

    def test_validate_rejects_short_plans(self):
        with pytest.raises(ReconstructionError):
            ContractionPlan(num_nodes=4, steps=((0, 1),)).validate()

    def test_validate_rejects_self_merges(self):
        plan = ContractionPlan(
            num_nodes=3, steps=((0, 1), (1, 0))
        )
        with pytest.raises(ReconstructionError):
            plan.validate()

    def test_from_dict_validates(self):
        with pytest.raises(ReconstructionError):
            ContractionPlan.from_dict(
                {"num_nodes": 3, "steps": [[0, 1]]}
            )


class TestPlanners:
    def test_greedy_trap_dp_wins(self):
        """The committed worst case: greedy's plan is strictly more
        expensive, DP's equals the exhaustive optimum."""
        g = greedy_plan(GREEDY_TRAP)
        d = dp_plan(GREEDY_TRAP)
        assert g.cost > d.cost
        assert d.cost == brute_force_optimum(GREEDY_TRAP)
        # reported costs are real: re-pricing the steps reproduces them
        assert plan_cost(GREEDY_TRAP, g) == g.cost
        assert plan_cost(GREEDY_TRAP, d) == d.cost

    def test_dp_never_worse_than_greedy_or_fixed(self):
        for edges, cuts in [
            ([(0, 1), (0, 2), (1, 3), (2, 3)], 1),
            ([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], 2),
            ([(0, 1), (1, 2), (2, 3)], 2),
        ]:
            qc, specs = dag_cut_circuit(
                edges, cuts, fresh_per_fragment=1, depth=2, seed=5
            )
            spec = network_spec_for_tree(partition_tree(qc, specs))
            d = dp_plan(spec)
            assert d.cost <= greedy_plan(spec).cost
            assert d.cost <= fixed_plan(spec).cost

    def test_auto_picks_dp_when_small(self):
        assert search_plan(GREEDY_TRAP, "auto").method == "dp"
        big = NetworkSpec(
            num_nodes=DP_MAX_NODES + 1,
            edges=tuple(
                (i, i + 1, 4) for i in range(DP_MAX_NODES)
            ),
            out_dims=(2,) * (DP_MAX_NODES + 1),
        )
        assert search_plan(big, "auto").method == "greedy"

    def test_unknown_method_rejected(self):
        with pytest.raises(ReconstructionError):
            search_plan(GREEDY_TRAP, "simulated-annealing")

    def test_fixed_plan_is_leaves_to_root_on_trees(self):
        qc, specs = tree_cut_circuit(
            [0, 0, 1], 1, fresh_per_fragment=2, depth=2, seed=7
        )
        tree = partition_tree(qc, specs)
        plan = fixed_plan(network_spec_for_tree(tree))
        # every step folds a child into its parent, children first
        merged = set()
        for a, b in plan.steps:
            assert tree.group_src[
                tree.fragments[b].in_groups[0]
            ] == a or a in merged
            merged.add(b)

    def test_reduced_bases_shrink_edges(self):
        qc, specs = dag_cut_circuit(
            [(0, 1), (0, 2), (1, 3), (2, 3)], 1,
            fresh_per_fragment=1, depth=2, seed=9,
        )
        tree = partition_tree(qc, specs)
        full = network_spec_for_tree(tree)
        bases = [
            reduced_bases(k, {0: ("X", "Y")})
            if g == 2
            else [("I", "X", "Y", "Z")] * k
            for g, k in enumerate(tree.group_sizes)
        ]
        reduced = network_spec_for_tree(tree, bases)
        assert reduced.edges[2][2] == 2 and full.edges[2][2] == 4
        assert dp_plan(reduced).cost < dp_plan(full).cost


class TestCostTracksTime:
    def test_cost_ordering_matches_measured_timings(self):
        """On the bench DAG (branchy 5-fragment, 2 cuts per group) the
        fixed leaves-to-root order is ≥ 5× more FLOPs than the searched
        plan, and the measured contraction time agrees on the ordering."""
        from repro.cutting.execution import exact_tree_data
        from repro.cutting.reconstruction import (
            _contract_network,
            build_tree_fragment_tensor,
        )

        qc, specs = dag_cut_circuit(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], 2,
            fresh_per_fragment=1, depth=2, seed=11,
        )
        tree = partition_tree(qc, specs)
        data = exact_tree_data(tree)
        tensors = [
            build_tree_fragment_tensor(data, i)[0]
            for i in range(tree.num_fragments)
        ]
        spec = network_spec_for_tree(tree)
        fixed, searched = fixed_plan(spec), dp_plan(spec)
        assert fixed.cost >= 5 * searched.cost

        from repro.utils.bits import permute_probability_axes

        def measure(plan):
            best = float("inf")
            for _ in range(5):
                t0 = time.perf_counter()
                vec, order = _contract_network(tensors, tree, plan, None)
                best = min(best, time.perf_counter() - t0)
            return best, permute_probability_axes(vec, order)

        t_fixed, v_fixed = measure(fixed)
        t_searched, v_searched = measure(searched)
        np.testing.assert_allclose(v_fixed, v_searched, atol=1e-9)
        # generous margin: a ≥ 5× FLOP gap must at least show up as a
        # measurable slowdown, machine noise notwithstanding
        assert t_fixed > t_searched * 1.5
