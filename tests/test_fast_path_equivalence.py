"""Equivalence of the cached/vectorised hot path against the reference path.

The PR that introduced :mod:`repro.cutting.cache` and the factorised
reconstruction kernels must be a pure performance change: every number the
fast path produces has to match a from-scratch simulation of each physical
variant circuit (the pre-cache semantics) to ≤1e-9.  These tests pin that
down across random circuits, ``K ∈ {1, 2, 3}``, full and reduced/neglected
basis pools, and both execution entry points.
"""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.circuits.circuit import Circuit
from repro.circuits.random import random_circuit
from repro.cutting import FragmentSimCache, bipartition
from repro.cutting.cut import CutPoint, CutSpec
from repro.cutting.execution import (
    _split_upstream_probs,
    exact_fragment_data,
    run_fragments,
)
from repro.cutting.reconstruction import (
    _signs_for,
    build_downstream_tensor,
    build_downstream_tensor_reference,
    build_upstream_tensor,
    build_upstream_tensor_reference,
    reconstruct_distribution,
)
from repro.cutting.variants import (
    downstream_init_tuples,
    downstream_variant,
    upstream_setting_tuples,
    upstream_variant,
)
from repro.harness.scaling import multi_cut_golden_circuit
from repro.parallel import run_fragments_parallel
from repro.sim import simulate_statevector

TOL = 1e-9


def random_cut_circuit(num_cuts: int, seed: int):
    """A random (complex, non-golden) circuit with ``K`` valid cut points.

    Same shape as :func:`multi_cut_golden_circuit` but with a fully generic
    upstream block, so the cached path is exercised on states with
    nontrivial phases on every cut wire.
    """
    rng = np.random.default_rng(seed)
    n_up = 2 + num_cuts
    n = n_up + 2
    cut_wires = list(range(2, 2 + num_cuts))
    qc = Circuit(n, name=f"rand-cut[K={num_cuts}]")
    qc = qc.compose(random_circuit(n_up, 3, seed=rng), qubits=list(range(n_up)))
    for w in cut_wires:  # every cut wire needs an upstream anchor
        if not any(w in inst.qubits for inst in qc):
            qc.rx(float(rng.uniform(0, 6.28)), w)
    boundary = {
        w: max(i for i, inst in enumerate(qc) if w in inst.qubits)
        for w in cut_wires
    }
    down_qubits = cut_wires + list(range(n_up, n))
    for a, b in zip(down_qubits, down_qubits[1:]):
        qc.cx(a, b)
    qc = qc.compose(random_circuit(len(down_qubits), 3, seed=rng), qubits=down_qubits)
    spec = CutSpec(tuple(CutPoint(w, boundary[w]) for w in cut_wires))
    return qc, spec


def reference_exact_data(pair, settings, inits):
    """Pre-cache semantics: simulate every physical variant circuit."""
    upstream = {
        tuple(s): _split_upstream_probs(
            simulate_statevector(upstream_variant(pair, s)).probabilities(), pair
        )
        for s in settings
    }
    downstream = {
        tuple(i): simulate_statevector(downstream_variant(pair, i)).probabilities()
        for i in inits
    }
    return upstream, downstream


def pair_for(K, seed, golden_shape):
    builder = multi_cut_golden_circuit if golden_shape else random_cut_circuit
    if golden_shape:
        qc, spec = builder(K, extra_up=2, extra_down=2, depth=2, seed=seed)
    else:
        qc, spec = builder(K, seed)
    return qc, bipartition(qc, spec)


@pytest.mark.parametrize("K", [1, 2, 3])
@pytest.mark.parametrize("golden_shape", [False, True])
class TestCacheMatchesVariantSimulation:
    def test_exact_fragment_data_full_sets(self, K, golden_shape):
        _, pair = pair_for(K, 100 + K, golden_shape)
        settings = upstream_setting_tuples(K)
        inits = downstream_init_tuples(K)
        ref_up, ref_down = reference_exact_data(pair, settings, inits)
        data = exact_fragment_data(pair)
        assert set(data.upstream) == set(ref_up)
        assert set(data.downstream) == set(ref_down)
        for s in ref_up:
            np.testing.assert_allclose(data.upstream[s], ref_up[s], atol=TOL)
        for i in ref_down:
            np.testing.assert_allclose(data.downstream[i], ref_down[i], atol=TOL)

    def test_exact_fragment_data_reduced_sets(self, K, golden_shape):
        _, pair = pair_for(K, 200 + K, golden_shape)
        golden = {0: "Y"} if K == 1 else {0: "Y", K - 1: ("X", "Z")}
        settings = reduced_setting_tuples(K, golden)
        inits = reduced_init_tuples(K, golden)
        ref_up, ref_down = reference_exact_data(pair, settings, inits)
        data = exact_fragment_data(pair, settings=settings, inits=inits)
        for s in ref_up:
            np.testing.assert_allclose(data.upstream[s], ref_up[s], atol=TOL)
        for i in ref_down:
            np.testing.assert_allclose(data.downstream[i], ref_down[i], atol=TOL)

    def test_run_fragments_ideal_exact_backend(self, K, golden_shape):
        """The ideal backend's cached run_variants path == circuit execution."""
        _, pair = pair_for(K, 300 + K, golden_shape)
        shots = 4096
        data = run_fragments(pair, IdealBackend(exact=True), shots=shots, seed=7)
        settings = upstream_setting_tuples(K)
        inits = downstream_init_tuples(K)
        # reference: the physical circuits through the same exact backend
        backend = IdealBackend(exact=True)
        circuits = [upstream_variant(pair, s) for s in settings] + [
            downstream_variant(pair, i) for i in inits
        ]
        results = backend.run(circuits, shots=shots, seed=7)
        for s, res in zip(settings, results[: len(settings)]):
            ref = _split_upstream_probs(res.probabilities(), pair)
            np.testing.assert_allclose(data.upstream[tuple(s)], ref, atol=TOL)
        for i, res in zip(inits, results[len(settings) :]):
            np.testing.assert_allclose(
                data.downstream[tuple(i)], res.probabilities(), atol=TOL
            )

    def test_reconstruction_end_to_end(self, K, golden_shape):
        qc, pair = pair_for(K, 400 + K, golden_shape)
        truth = simulate_statevector(qc).probabilities()
        p = reconstruct_distribution(exact_fragment_data(pair), postprocess="raw")
        np.testing.assert_allclose(p, truth, atol=TOL)


@pytest.mark.parametrize("K", [1, 2, 3])
class TestVectorisedKernelsMatchReference:
    @pytest.fixture
    def data(self, K):
        _, pair = pair_for(K, 500 + K, False)
        return exact_fragment_data(pair)

    def test_full_bases(self, K, data):
        A, rows_a = build_upstream_tensor(data)
        Ar, rows_ar = build_upstream_tensor_reference(data)
        B, rows_b = build_downstream_tensor(data)
        Br, rows_br = build_downstream_tensor_reference(data)
        assert rows_a == rows_ar and rows_b == rows_br
        np.testing.assert_allclose(A, Ar, atol=TOL)
        np.testing.assert_allclose(B, Br, atol=TOL)

    @pytest.mark.parametrize(
        "pool", [("I", "X", "Z"), ("I", "Y"), ("I", "X", "Y"), ("I",)]
    )
    def test_neglected_pools(self, K, data, pool):
        """Neglecting basis elements just slices the per-cut factors."""
        bases = [pool] + [("I", "X", "Y", "Z")] * (K - 1)
        A, rows_a = build_upstream_tensor(data, bases)
        Ar, rows_ar = build_upstream_tensor_reference(data, bases)
        B, _ = build_downstream_tensor(data, bases)
        Br, _ = build_downstream_tensor_reference(data, bases)
        assert rows_a == rows_ar and len(rows_a) == len(pool) * 4 ** (K - 1)
        np.testing.assert_allclose(A, Ar, atol=TOL)
        np.testing.assert_allclose(B, Br, atol=TOL)

    def test_reduced_data_reduced_bases(self, K, data):
        _, pair = pair_for(K, 600 + K, True)
        golden = {k: "Y" for k in range(K)}
        d = exact_fragment_data(
            pair,
            settings=reduced_setting_tuples(K, golden),
            inits=reduced_init_tuples(K, golden),
        )
        bases = reduced_bases(K, golden)
        A, _ = build_upstream_tensor(d, bases)
        Ar, _ = build_upstream_tensor_reference(d, bases)
        B, _ = build_downstream_tensor(d, bases)
        Br, _ = build_downstream_tensor_reference(d, bases)
        np.testing.assert_allclose(A, Ar, atol=TOL)
        np.testing.assert_allclose(B, Br, atol=TOL)


class TestSampledPaths:
    def test_sampled_run_fragments_statistics(self):
        """The cached sampling path still concentrates on the exact data."""
        _, pair = pair_for(2, 700, False)
        exact = exact_fragment_data(pair)
        data = run_fragments(pair, IdealBackend(), shots=200_000, seed=11)
        for key in exact.upstream:
            assert np.abs(exact.upstream[key] - data.upstream[key]).max() < 0.01
        for key in exact.downstream:
            assert np.abs(exact.downstream[key] - data.downstream[key]).max() < 0.01

    def test_parallel_thread_matches_serial(self):
        """Worker-local backends + shared cache keep results bit-identical."""
        _, pair = pair_for(2, 800, False)
        a = run_fragments_parallel(
            pair, IdealBackend, shots=500, seed=3, max_workers=4, mode="thread"
        )
        b = run_fragments_parallel(
            pair, IdealBackend, shots=500, seed=3, mode="serial"
        )
        assert set(a.upstream) == set(b.upstream)
        for k in a.upstream:
            np.testing.assert_array_equal(a.upstream[k], b.upstream[k])
        for k in a.downstream:
            np.testing.assert_array_equal(a.downstream[k], b.downstream[k])

    def test_cache_is_shared_across_pipeline_stages(self):
        """One FragmentSimCache instance serves finder + execution."""
        _, pair = pair_for(2, 900, True)
        cache = FragmentSimCache(pair)
        d1 = exact_fragment_data(pair, cache=cache)
        body = cache._up_tensor
        assert body is not None
        d2 = run_fragments(pair, IdealBackend(exact=True), shots=100, cache=cache)
        assert cache._up_tensor is body  # body simulated exactly once
        for k in d1.upstream:
            assert d2.upstream[k].shape == d1.upstream[k].shape


class TestSignsFor:
    @pytest.mark.parametrize("K", [1, 2, 3, 5, 8])
    def test_popcount_parity_matches_loop(self, K):
        r = np.arange(1 << K)
        for mask in range(1 << K):
            naive = np.array(
                [1.0 - 2.0 * (bin(x & mask).count("1") & 1) for x in r]
            )
            np.testing.assert_array_equal(_signs_for(mask, K), naive)
