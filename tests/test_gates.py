"""Unit tests for the gate registry: matrices, flags, inverses."""

import numpy as np
import pytest

from repro.circuits.gates import GATE_REGISTRY, Gate, gate_matrix, get_gate_def
from repro.exceptions import GateError

_PARAMS = {0: (), 1: (0.73,), 3: (0.7, 0.3, 1.1)}


def _params_for(name: str):
    return _PARAMS[get_gate_def(name).num_params]


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(GATE_REGISTRY))
    def test_unitarity(self, name):
        m = gate_matrix(name, _params_for(name))
        dim = m.shape[0]
        np.testing.assert_allclose(m @ m.conj().T, np.eye(dim), atol=1e-12)

    @pytest.mark.parametrize("name", sorted(GATE_REGISTRY))
    def test_shape_matches_arity(self, name):
        d = get_gate_def(name)
        m = gate_matrix(name, _params_for(name))
        assert m.shape == (1 << d.num_qubits, 1 << d.num_qubits)

    @pytest.mark.parametrize(
        "name", [n for n, d in GATE_REGISTRY.items() if d.self_inverse]
    )
    def test_self_inverse_flag(self, name):
        m = gate_matrix(name, _params_for(name))
        np.testing.assert_allclose(m @ m, np.eye(m.shape[0]), atol=1e-12)

    @pytest.mark.parametrize(
        "name", [n for n, d in GATE_REGISTRY.items() if d.real]
    )
    def test_real_flag(self, name):
        m = gate_matrix(name, _params_for(name))
        assert np.max(np.abs(m.imag)) < 1e-12

    @pytest.mark.parametrize(
        "name", [n for n, d in GATE_REGISTRY.items() if d.diagonal]
    )
    def test_diagonal_flag(self, name):
        m = gate_matrix(name, _params_for(name))
        np.testing.assert_allclose(m, np.diag(np.diag(m)), atol=1e-12)

    def test_unknown_gate(self):
        with pytest.raises(GateError):
            get_gate_def("frobnicate")

    def test_wrong_param_count(self):
        with pytest.raises(GateError):
            gate_matrix("rx", ())
        with pytest.raises(GateError):
            gate_matrix("h", (0.5,))


class TestSpecificMatrices:
    def test_cx_convention_control_is_lsb(self):
        """CX(control, target): first listed qubit indexes the LSB."""
        cx = gate_matrix("cx")
        # |control=1, target=0> = index 1 -> |11> = index 3
        v = np.zeros(4)
        v[1] = 1.0
        np.testing.assert_allclose(cx @ v, np.eye(4)[3])

    def test_rx_rotation(self):
        np.testing.assert_allclose(
            gate_matrix("rx", (np.pi,)), -1j * gate_matrix("x"), atol=1e-12
        )

    def test_ry_is_real(self):
        m = gate_matrix("ry", (1.1,))
        assert np.max(np.abs(m.imag)) == 0.0

    def test_rz_diagonal(self):
        m = gate_matrix("rz", (0.4,))
        assert m[0, 1] == 0 and m[1, 0] == 0
        assert np.isclose(m[1, 1] / m[0, 0], np.exp(0.4j))

    def test_sx_squared_is_x(self):
        sx = gate_matrix("sx")
        np.testing.assert_allclose(sx @ sx, gate_matrix("x"), atol=1e-12)

    def test_u3_covers_hadamard(self):
        h = gate_matrix("u3", (np.pi / 2, 0.0, np.pi))
        np.testing.assert_allclose(h, gate_matrix("h"), atol=1e-12)

    def test_swap(self):
        sw = gate_matrix("swap")
        v = np.zeros(4)
        v[1] = 1.0  # |10>
        np.testing.assert_allclose(sw @ v, np.eye(4)[2])  # -> |01>

    def test_ccx_flips_only_when_both_controls(self):
        ccx = gate_matrix("ccx")
        for idx in range(8):
            out = ccx @ np.eye(8)[idx]
            a, b, c = idx & 1, (idx >> 1) & 1, (idx >> 2) & 1
            expect = idx ^ (4 if (a and b) else 0)
            assert np.argmax(np.abs(out)) == expect

    def test_rzz_diagonal_phases(self):
        m = gate_matrix("rzz", (0.8,))
        diag = np.diag(m)
        assert np.isclose(diag[0], np.exp(-0.4j))
        assert np.isclose(diag[1], np.exp(+0.4j))
        assert np.isclose(diag[3], np.exp(-0.4j))


class TestInverses:
    @pytest.mark.parametrize(
        "name",
        ["rx", "ry", "rz", "p", "crz", "cp", "rzz", "rxx", "ryy", "s", "sdg",
         "t", "tdg", "sx", "sxdg", "u3", "h", "x", "cx", "swap"],
    )
    def test_inverse_matrix(self, name):
        g = Gate(name, _params_for(name))
        m = g.matrix()
        mi = g.inverse().matrix()
        np.testing.assert_allclose(mi @ m, np.eye(m.shape[0]), atol=1e-12)

    def test_gate_str(self):
        assert str(Gate("rx", (0.5,))) == "rx(0.5)"
        assert str(Gate("h")) == "h"
