"""Unit tests for measurement/preparation variant generation."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.cutting import (
    PREPARATION_STATES,
    downstream_init_tuples,
    downstream_variant,
    upstream_setting_tuples,
    upstream_variant,
)
from repro.cutting.variants import preparations_for_bases
from repro.exceptions import CutError
from repro.linalg.paulis import pauli_eigenpairs
from repro.sim import simulate_statevector


def _gates(circuit) -> int:
    """Number of real gates (barriers are fences, not operations)."""
    return sum(1 for inst in circuit if inst.name != "barrier")


class TestPreparationStates:
    """The six preparation codes must build the advertised eigenstates."""

    _EXPECT = {
        "Z+": ("Z", 0),
        "Z-": ("Z", 1),
        "X+": ("X", 0),
        "X-": ("X", 1),
        "Y+": ("Y", 0),
        "Y-": ("Y", 1),
    }

    @pytest.mark.parametrize("code", sorted(PREPARATION_STATES))
    def test_prepares_eigenstate(self, code):
        qc = Circuit(1)
        for g in PREPARATION_STATES[code]:
            qc.add_gate(g, (0,))
        state = simulate_statevector(qc).vector()
        basis, idx = self._EXPECT[code]
        _, ket = pauli_eigenpairs(basis)[idx]
        overlap = abs(np.vdot(ket, state))
        assert np.isclose(overlap, 1.0, atol=1e-12)

    def test_preparations_for_bases(self):
        assert preparations_for_bases(["I", "Z"]) == ("Z+", "Z-")
        assert len(preparations_for_bases(["I", "X", "Y", "Z"])) == 6
        assert len(preparations_for_bases(["I", "X", "Z"])) == 4  # Y dropped
        assert len(preparations_for_bases(["I", "X", "Y"])) == 6  # Z shared with I


class TestSettingTuples:
    def test_default_counts(self):
        assert len(upstream_setting_tuples(1)) == 3
        assert len(upstream_setting_tuples(2)) == 9
        assert len(downstream_init_tuples(1)) == 6
        assert len(downstream_init_tuples(2)) == 36

    def test_restricted(self):
        ts = upstream_setting_tuples(2, [("X", "Z"), ("Y",)])
        assert len(ts) == 2
        assert all(t[1] == "Y" for t in ts)

    def test_invalid_setting_rejected(self):
        with pytest.raises(CutError):
            upstream_setting_tuples(1, [("Q",)])
        with pytest.raises(CutError):
            upstream_setting_tuples(1, [()])


class TestUpstreamVariant:
    def test_measurement_basis_rotation(self, simple_cut_pair):
        """Measuring the variant in Z == measuring the fragment in `basis`."""
        _, _, pair = simple_cut_pair
        base = simulate_statevector(pair.upstream)
        for basis in ("X", "Y", "Z"):
            var = upstream_variant(pair, (basis,))
            probs = simulate_statevector(var).probabilities()
            # exact check: P(cut bit = 0) equals <P_+> of the basis on the
            # untouched fragment state
            from repro.linalg.paulis import pauli_eigenpairs

            val, ket = pauli_eigenpairs(basis)[0]
            proj = np.outer(ket, ket.conj())
            expect = base.expectation(proj, (pair.up_cut_local[0],)).real
            cut_q = pair.up_cut_local[0]
            p0 = sum(
                p for i, p in enumerate(probs) if not (i >> cut_q) & 1
            )
            assert np.isclose(p0, expect, atol=1e-10), basis

    def test_z_variant_adds_nothing(self, simple_cut_pair):
        """Z appends no rotation gates — only the body/variant fence."""
        _, _, pair = simple_cut_pair
        var = upstream_variant(pair, ("Z",))
        assert _gates(var) == _gates(pair.upstream)
        assert var[-1].name == "barrier"

    def test_wrong_tuple_length(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        with pytest.raises(CutError):
            upstream_variant(pair, ("X", "Y"))

    def test_invalid_basis(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        with pytest.raises(CutError):
            upstream_variant(pair, ("I",))


class TestDownstreamVariant:
    def test_prep_gates_prepended(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        var = downstream_variant(pair, ("Y+",))
        assert _gates(var) == _gates(pair.downstream) + 2  # h, s
        assert var[0].name == "h" and var[1].name == "s"
        assert var[0].qubits == (pair.down_cut_local[0],)
        assert var[2].name == "barrier"  # preps fenced off from the body

    def test_zplus_adds_nothing(self, simple_cut_pair):
        """Z+ prepends no gates — only the variant/body fence."""
        _, _, pair = simple_cut_pair
        var = downstream_variant(pair, ("Z+",))
        assert _gates(var) == _gates(pair.downstream)
        assert var[0].name == "barrier"

    def test_invalid_code(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        with pytest.raises(CutError):
            downstream_variant(pair, ("Q+",))

    def test_wrong_tuple_length(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        with pytest.raises(CutError):
            downstream_variant(pair, ())
