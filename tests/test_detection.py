"""Tests for the empirical (finite-shot) golden-cut detector."""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.core import detect_golden_bases, golden_ansatz
from repro.cutting import bipartition
from repro.cutting.execution import exact_fragment_data, run_fragments
from repro.exceptions import DetectionError

from tests.helpers import two_block_circuit


def _measured_data(pair, shots, seed=0):
    return run_fragments(
        pair, IdealBackend(), shots=shots, inits=[("Z+",) * pair.num_cuts], seed=seed
    )


class TestDetector:
    def test_detects_true_golden(self):
        spec = golden_ansatz(5, seed=31)
        pair = bipartition(spec.circuit, spec.cut_spec)
        results = detect_golden_bases(_measured_data(pair, 20_000), alpha=1e-3)
        verdict = {r.basis: r.is_golden for r in results}
        assert verdict["Y"] is True

    def test_rejects_informative_bases(self):
        """On a generic circuit with a Z-informative cut, Z must be kept."""
        for seed in range(6):
            qc, spec = two_block_circuit(3, [0, 1], [1, 2], seed=300 + seed)
            pair = bipartition(qc, spec)
            from repro.core.golden import definition1_deviation

            dev_z = definition1_deviation(exact_fragment_data(pair), 0, "Z")
            if dev_z < 0.05:
                continue
            results = detect_golden_bases(_measured_data(pair, 20_000), alpha=1e-3)
            verdict = {r.basis: r.is_golden for r in results}
            assert verdict["Z"] is False
            return
        pytest.fail("no Z-informative circuit found")

    def test_more_shots_sharper_zscores(self):
        """For a non-golden basis, z grows ~ sqrt(shots)."""
        for seed in range(6):
            qc, spec = two_block_circuit(3, [0, 1], [1, 2], seed=400 + seed)
            pair = bipartition(qc, spec)
            from repro.core.golden import definition1_deviation

            if definition1_deviation(exact_fragment_data(pair), 0, "Z") < 0.05:
                continue
            z_small = max(
                r.max_z
                for r in detect_golden_bases(_measured_data(pair, 500, seed=1))
                if r.basis == "Z"
            )
            z_big = max(
                r.max_z
                for r in detect_golden_bases(_measured_data(pair, 50_000, seed=1))
                if r.basis == "Z"
            )
            assert z_big > z_small
            return
        pytest.fail("no suitable circuit found")

    def test_false_rejection_rate_controlled(self):
        """A truly golden basis should essentially never be rejected."""
        spec = golden_ansatz(5, seed=77)
        pair = bipartition(spec.circuit, spec.cut_spec)
        rejections = 0
        for trial in range(10):
            results = detect_golden_bases(
                _measured_data(pair, 5_000, seed=trial), alpha=1e-3
            )
            y = next(r for r in results if r.basis == "Y")
            rejections += 0 if y.is_golden else 1
        assert rejections == 0

    def test_p_value_range(self):
        spec = golden_ansatz(5, seed=3)
        pair = bipartition(spec.circuit, spec.cut_spec)
        for r in detect_golden_bases(_measured_data(pair, 2_000)):
            assert 0.0 <= r.p_value <= 1.0

    def test_requires_finite_shot_data(self):
        spec = golden_ansatz(5, seed=3)
        pair = bipartition(spec.circuit, spec.cut_spec)
        with pytest.raises(DetectionError):
            detect_golden_bases(exact_fragment_data(pair))

    def test_cut_selection(self):
        qc, spec = two_block_circuit(
            5, [0, 1, 2], [1, 2, 3, 4], seed=5, real_upstream=True
        )
        pair = bipartition(qc, spec)
        results = detect_golden_bases(_measured_data(pair, 5_000), cuts=[1])
        assert all(r.cut == 1 for r in results)
        assert len(results) == 3

    def test_multi_cut_detects_both(self):
        qc, spec = two_block_circuit(
            5, [0, 1, 2], [1, 2, 3, 4], seed=6, real_upstream=True
        )
        pair = bipartition(qc, spec)
        results = detect_golden_bases(_measured_data(pair, 30_000), alpha=1e-3)
        y_verdicts = [r.is_golden for r in results if r.basis == "Y"]
        assert y_verdicts == [True, True]
