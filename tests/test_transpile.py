"""Unit tests for the transpiler: basis lowering, passes, routing, pipeline."""

import numpy as np
import pytest

from repro.circuits import Circuit, random_circuit
from repro.exceptions import TranspileError
from repro.sim import circuit_unitary, simulate_statevector
from repro.transpile import (
    CouplingMap,
    HARDWARE_BASIS,
    cancel_adjacent_inverses,
    decompose_to_basis,
    merge_single_qubit_runs,
    route_circuit,
    transpile,
)
from repro.transpile.basis import zyz_angles
from repro.utils.bits import permute_probability_axes

from tests.helpers import phase_equal


class TestZYZ:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_unitary_roundtrip(self, seed):
        from scipy.stats import unitary_group

        u = unitary_group.rvs(2, random_state=seed)
        theta, phi, lam = zyz_angles(u)
        qc = Circuit(1).u3(theta, phi, lam, 0)
        assert phase_equal(circuit_unitary(qc), u)

    def test_identity(self):
        theta, phi, lam = zyz_angles(np.eye(2, dtype=complex))
        assert np.isclose(theta, 0.0)

    def test_x_gate(self):
        theta, _, _ = zyz_angles(np.array([[0, 1], [1, 0]], dtype=complex))
        assert np.isclose(theta, np.pi)

    def test_rejects_bad_shape(self):
        with pytest.raises(TranspileError):
            zyz_angles(np.eye(4))


class TestBasisDecomposition:
    ALL_GATES = [
        ("h", 1, 0), ("x", 1, 0), ("y", 1, 0), ("z", 1, 0), ("s", 1, 0),
        ("t", 1, 0), ("sx", 1, 0), ("rx", 1, 1), ("ry", 1, 1), ("rz", 1, 1),
        ("u3", 1, 3), ("cx", 2, 0), ("cz", 2, 0), ("cy", 2, 0), ("ch", 2, 0),
        ("swap", 2, 0), ("iswap", 2, 0), ("crz", 2, 1), ("cp", 2, 1),
        ("rzz", 2, 1), ("rxx", 2, 1), ("ryy", 2, 1), ("ccx", 3, 0),
        ("cswap", 3, 0),
    ]

    @pytest.mark.parametrize("name,nq,npar", ALL_GATES)
    def test_gate_equivalence(self, name, nq, npar):
        params = (0.913, 0.2, 1.7)[:npar]
        qc = Circuit(nq).add_gate(name, tuple(range(nq)), params)
        dec = decompose_to_basis(qc)
        assert all(i.name in HARDWARE_BASIS for i in dec)
        assert phase_equal(circuit_unitary(dec), circuit_unitary(qc))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuit_equivalence(self, seed):
        qc = random_circuit(4, 4, seed=seed)
        dec = decompose_to_basis(qc)
        assert all(i.name in HARDWARE_BASIS for i in dec)
        assert phase_equal(circuit_unitary(dec), circuit_unitary(qc))


class TestPasses:
    def test_merge_single_qubit_runs(self):
        qc = Circuit(2).h(0).s(0).t(0).cx(0, 1).h(1)
        merged = merge_single_qubit_runs(qc)
        assert phase_equal(circuit_unitary(merged), circuit_unitary(qc))
        # the 3-gate run becomes at most 5 native ops
        assert len([i for i in merged if i.qubits == (0,)]) <= 5

    def test_cancel_self_inverse_pair(self):
        qc = Circuit(2).h(0).h(0).cx(0, 1).cx(0, 1).x(1)
        out = cancel_adjacent_inverses(qc)
        assert [i.name for i in out] == ["x"]

    def test_cancel_parametric_inverse(self):
        qc = Circuit(1).rz(0.7, 0).rz(-0.7, 0)
        assert len(cancel_adjacent_inverses(qc)) == 0

    def test_cancel_sdg_s(self):
        qc = Circuit(1).s(0).sdg(0)
        assert len(cancel_adjacent_inverses(qc)) == 0

    def test_cancel_cascades(self):
        qc = Circuit(1).h(0).x(0).x(0).h(0)
        assert len(cancel_adjacent_inverses(qc)) == 0

    def test_no_false_cancellation_different_wires(self):
        qc = Circuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_adjacent_inverses(qc)) == 2


class TestCouplingMap:
    def test_linear(self):
        cm = CouplingMap.linear(4)
        assert cm.allowed(1, 2) and not cm.allowed(0, 3)
        assert cm.distance(0, 3) == 3

    def test_ring(self):
        cm = CouplingMap.ring(5)
        assert cm.allowed(0, 4)
        assert cm.distance(0, 2) == 2

    def test_grid(self):
        cm = CouplingMap.grid(2, 3)
        assert cm.allowed(0, 3)  # vertical neighbour
        assert not cm.allowed(0, 4)

    def test_ibm_topologies(self):
        t5 = CouplingMap.ibm_t_shape_5q()
        assert t5.num_qubits == 5 and t5.is_connected()
        h7 = CouplingMap.ibm_h_shape_7q()
        assert h7.num_qubits == 7 and h7.is_connected()

    def test_shortest_path(self):
        cm = CouplingMap.ibm_t_shape_5q()
        assert cm.shortest_path(0, 4) == [0, 1, 3, 4]

    def test_disconnected_raises(self):
        cm = CouplingMap([(0, 1)], num_qubits=3)
        with pytest.raises(TranspileError):
            cm.distance(0, 2)


class TestRouting:
    def test_already_routed_untouched(self):
        cm = CouplingMap.linear(3)
        qc = Circuit(3).cx(0, 1).cx(1, 2)
        routed, layout = route_circuit(qc, cm)
        assert layout == [0, 1, 2]
        assert routed.count_ops().get("swap", 0) == 0

    def test_inserts_swaps_for_distant_pair(self):
        cm = CouplingMap.linear(3)
        qc = Circuit(3).cx(0, 2)
        routed, layout = route_circuit(qc, cm)
        assert routed.count_ops().get("swap", 0) == 1

    def test_too_wide_rejected(self):
        with pytest.raises(TranspileError):
            route_circuit(Circuit(4).h(0), CouplingMap.linear(3))

    @pytest.mark.parametrize("seed", range(4))
    def test_routed_semantics(self, seed):
        cm = CouplingMap.ibm_t_shape_5q()
        qc = random_circuit(5, 3, seed=seed + 40)
        tqc, layout = transpile(qc, cm)
        p_log = simulate_statevector(qc).probabilities()
        p_phys = simulate_statevector(tqc).probabilities()
        perm = [0] * 5
        for logical, phys in enumerate(layout):
            perm[phys] = logical
        np.testing.assert_allclose(
            permute_probability_axes(p_phys, perm), p_log, atol=1e-9
        )


class TestPipeline:
    @pytest.mark.parametrize("seed", range(3))
    def test_no_coupling_equivalence(self, seed):
        qc = random_circuit(4, 4, seed=seed + 60)
        tqc, layout = transpile(qc)
        assert layout == list(range(4))
        assert all(i.name in HARDWARE_BASIS for i in tqc)
        assert phase_equal(circuit_unitary(tqc), circuit_unitary(qc))

    def test_optimize_false_still_correct(self):
        qc = random_circuit(3, 3, seed=77)
        tqc, _ = transpile(qc, optimize=False)
        assert phase_equal(circuit_unitary(tqc), circuit_unitary(qc))
