"""Unit tests for cut specification and circuit bipartitioning."""

import pytest

from repro.circuits import Circuit, ghz_circuit
from repro.cutting import CutPoint, CutSpec, bipartition, find_cuts
from repro.exceptions import CutError

from tests.helpers import two_block_circuit


class TestCutSpec:
    def test_valid(self, simple_cut_pair):
        qc, spec, _ = simple_cut_pair
        spec.validate(qc)

    def test_wire_out_of_range(self):
        qc = Circuit(2).h(0).cx(0, 1)
        with pytest.raises(CutError):
            CutSpec((CutPoint(5, 0),)).validate(qc)

    def test_gate_not_on_wire(self):
        qc = Circuit(2).h(0).cx(0, 1)
        with pytest.raises(CutError):
            CutSpec((CutPoint(1, 0),)).validate(qc)  # h(0) doesn't touch wire 1

    def test_duplicate_wires_rejected(self):
        with pytest.raises(CutError):
            CutSpec((CutPoint(1, 0), CutPoint(1, 2)))

    def test_empty_rejected(self):
        with pytest.raises(CutError):
            CutSpec(())

    def test_last_instruction_on_wire_rejected_eagerly(self):
        # regression: validate() itself must enforce the documented "must
        # not be the last instruction on that wire" constraint instead of
        # deferring the failure to CircuitDag.downstream_of_cut
        qc = Circuit(2).h(0).cx(0, 1)
        with pytest.raises(CutError, match="severs nothing"):
            CutPoint(1, 1).validate(qc)
        # the same instruction is cuttable on wire 0 (h(0) follows nothing)
        with pytest.raises(CutError, match="severs nothing"):
            CutPoint(0, 1).validate(qc)
        CutPoint(0, 0).validate(qc)


class TestBipartition:
    def test_simple_structure(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        assert pair.n_up == 2 and pair.n_down == 2
        assert pair.up_out_original == [0]
        assert pair.down_out_original == [1, 2]
        assert pair.num_cuts == 1

    def test_cut_after_last_gate_rejected(self):
        qc = Circuit(2).h(0).cx(0, 1)
        # instruction 1 is the last gate on wire 1: severs nothing
        with pytest.raises(CutError):
            bipartition(qc, CutSpec((CutPoint(1, 1),)))

    def test_wire_closure_resolves_side_wires(self):
        """Cutting only wire 1 pulls wires 0 and 2 wholly downstream.

        The closure leaves an extreme but valid bipartition: the upstream
        fragment is just the cut wire's preparation and has *no* output
        qubits.  Reconstruction must still be exact.
        """
        import numpy as np

        from repro.cutting.execution import exact_fragment_data
        from repro.cutting.reconstruction import reconstruct_distribution
        from repro.sim import simulate_statevector

        qc = Circuit(3)
        qc.h(0).h(1)
        qc.cx(0, 2).cx(1, 2)
        pair = bipartition(qc, CutSpec((CutPoint(1, 1),)))
        assert pair.n_up_out == 0
        assert sorted(pair.down_out_original) == [0, 1, 2]
        data = exact_fragment_data(pair)
        p = reconstruct_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    def test_anchor_downstream_of_other_cut_rejected(self):
        qc = Circuit(2)
        qc.h(0)          # 0
        qc.cx(0, 1)      # 1
        qc.ry(0.3, 1)    # 2
        qc.cx(1, 0)      # 3  (wire 1 feeds back onto wire 0)
        qc.cx(0, 1)      # 4
        # cut wire 0 after h(0): descendants = {1,2,3,4}; a second cut on
        # wire 1 anchored at instruction 2 sits inside those descendants.
        with pytest.raises(CutError):
            bipartition(
                qc, CutSpec((CutPoint(0, 0), CutPoint(1, 2)))
            )

    def test_untouched_qubits_go_downstream(self):
        qc = Circuit(4, name="idle")
        qc.h(0).cx(0, 1)
        qc.cx(1, 2)  # qubit 3 untouched
        pair = bipartition(qc, CutSpec((CutPoint(1, 1),)))
        assert 3 in pair.down_out_original

    def test_wire_integrity_pulls_independent_gates_downstream(self):
        qc = Circuit(3)
        qc.h(0).cx(0, 1)      # upstream block
        qc.x(2)               # independent gate on downstream-only wire
        qc.cx(1, 2)           # downstream couples wires 1,2
        pair = bipartition(qc, CutSpec((CutPoint(1, 1),)))
        assert len(pair.downstream) == 2  # x(2) and cx(1,2)

    def test_output_order_covers_register(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        assert sorted(pair.output_order()) == [0, 1, 2]

    def test_multi_cut_structure(self):
        qc, spec = two_block_circuit(5, [0, 1, 2], [1, 2, 3, 4], seed=0)
        pair = bipartition(qc, spec)
        assert pair.num_cuts == 2
        assert sorted(pair.output_order()) == [0, 1, 2, 3, 4]

    def test_remapped_instructions_preserved(self, simple_cut_pair):
        qc, _, pair = simple_cut_pair
        total_ops = len(pair.upstream) + len(pair.downstream)
        assert total_ops == len(qc)

    def test_describe(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        assert "K=1" in pair.describe()


class TestFindCuts:
    def test_finds_single_cut(self, simple_cut_pair):
        qc, spec, _ = simple_cut_pair
        found = find_cuts(qc, max_fragment_qubits=2)
        assert found.num_cuts == 1
        pair = bipartition(qc, found)
        assert max(pair.n_up, pair.n_down) <= 2

    def test_ghz_is_cuttable(self):
        qc = ghz_circuit(4)
        spec = find_cuts(qc, max_fragment_qubits=3)
        pair = bipartition(qc, spec)
        assert max(pair.n_up, pair.n_down) <= 3

    def test_impossible_budget_raises(self):
        qc = ghz_circuit(3)
        with pytest.raises(CutError):
            find_cuts(qc, max_fragment_qubits=1)

    def test_prefers_fewer_cuts(self):
        qc, _ = two_block_circuit(5, [0, 1, 2], [2, 3, 4], seed=1)
        spec = find_cuts(qc, max_fragment_qubits=4)
        assert spec.num_cuts == 1
