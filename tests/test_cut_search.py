"""Automatic cut-point search: engines, objectives, pipeline auto mode.

The quality pins are the contract of :mod:`repro.cutting.search`:

* the exhaustive engine is the reference — on small circuits the greedy
  heuristic must match its ``"width"`` optimum and stay within 1.5× of
  its ``"cost"`` optimum;
* every returned spec set replays through ``partition_tree`` within the
  width budget (property-tested over random circuit families);
* the spec-free pipeline entry points succeed end-to-end on the harness
  chain/tree circuit families.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import IdealBackend
from repro.circuits import ghz_circuit, random_circuit
from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag
from repro.core.pipeline import cut_and_run_chain, cut_and_run_tree
from repro.cutting import CutSpec, find_cut_specs, find_cuts, partition_tree
from repro.cutting.chain import partition_chain
from repro.cutting.search import CutSearchResult, search_cut_specs
from repro.exceptions import CutError
from repro.harness.scaling import (
    chain_cut_circuit,
    ghz_star_circuit,
    golden_chain_circuit,
    tree_cut_circuit,
)
from repro.metrics import total_variation
from repro.sim import simulate_statevector

from helpers import two_block_circuit


def _search_family(seed: int) -> Circuit:
    """Small two-block circuits with a known good cut structure."""
    return two_block_circuit(5, [0, 1, 2], [2, 3, 4], depth=2, seed=seed)[0]


class TestSearchBasics:
    def test_pair_result_fields(self):
        qc = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        res = search_cut_specs(qc, 2)
        assert isinstance(res, CutSearchResult)
        assert res.objective == "width"
        assert res.engine in ("exhaustive", "greedy")
        assert res.evaluations >= 1
        assert res.report["budget"] == 2
        assert res.specs == find_cut_specs(qc, 2)
        # the specs replay: same tree shape out of partition_tree
        tree = partition_tree(qc, res.specs)
        assert tree.describe() == res.tree.describe()

    def test_width_budget_respected(self):
        res = search_cut_specs(ghz_circuit(6), 3)
        assert all(f.num_qubits <= 3 for f in res.tree.fragments)
        assert res.tree.num_fragments >= 2

    def test_num_fragments_pinned(self):
        res = search_cut_specs(ghz_circuit(6), 5, num_fragments=3)
        assert res.tree.num_fragments == 3

    def test_chain_topology(self):
        qc, _ = chain_cut_circuit(
            3, cuts_per_group=1, fresh_per_fragment=2, depth=1, seed=3
        )
        res = search_cut_specs(qc, 3, topology="chain")
        assert res.tree.is_chain
        # the chain partitioner accepts the specs directly
        chain = partition_chain(qc, res.specs)
        assert chain.num_fragments == res.tree.num_fragments

    def test_no_fit_raises(self):
        with pytest.raises(CutError, match="no cut set"):
            find_cut_specs(ghz_circuit(4), 1)

    def test_max_cuts_too_small_for_fragments(self):
        with pytest.raises(CutError, match="max_cuts"):
            find_cut_specs(ghz_circuit(6), 3, num_fragments=4, max_cuts=2)

    def test_knob_validation(self):
        qc = ghz_circuit(4)
        with pytest.raises(CutError, match="objective"):
            find_cut_specs(qc, 3, objective="speed")
        with pytest.raises(CutError, match="engine"):
            find_cut_specs(qc, 3, engine="quantum")
        with pytest.raises(CutError, match="topology"):
            find_cut_specs(qc, 3, topology="forest")
        with pytest.raises(CutError, match="at least two"):
            find_cut_specs(qc, 3, num_fragments=1)
        with pytest.raises(CutError, match="no instructions"):
            find_cut_specs(Circuit(2), 1)


class TestEngineAgreement:
    """Greedy vs the exhaustive reference — the search-quality goldens."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_width_matches_exhaustive(self, seed):
        qc = _search_family(seed)
        ref = search_cut_specs(qc, 4, engine="exhaustive")
        heur = search_cut_specs(qc, 4, engine="greedy")
        assert heur.value == ref.value

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cost_within_1_5x_of_exhaustive(self, seed):
        qc = _search_family(seed)
        ref = search_cut_specs(qc, 4, objective="cost", engine="exhaustive")
        heur = search_cut_specs(qc, 4, objective="cost", engine="greedy")
        assert heur.value <= 1.5 * ref.value + 1e-9

    def test_exhaustive_is_optimal_on_enumerable_circuit(self):
        # budget 4 on the two-block family admits a single-cut bipartition;
        # the width objective must find exactly it (1 cut, width 4)
        qc = _search_family(0)
        ref = search_cut_specs(qc, 4, engine="exhaustive")
        assert ref.value[0] == 1

    def test_greedy_rescue_still_solves(self):
        # greedy prefix splits always solve GHZ; force the engine anyway
        res = search_cut_specs(ghz_circuit(8), 5, engine="greedy")
        assert all(f.num_qubits <= 5 for f in res.tree.fragments)


class TestCostObjective:
    def test_cost_value_is_positive_scalar(self):
        qc = _search_family(1)
        res = search_cut_specs(qc, 4, objective="cost")
        assert isinstance(res.value, float) and res.value > 0

    def test_golden_discount_never_hurts(self):
        qc, _, _ = golden_chain_circuit(3, planted_groups=(0, 1), seed=5)
        plain = search_cut_specs(qc, 4, objective="cost")
        discounted = search_cut_specs(
            qc, 4, objective="cost", golden_discount=True
        )
        assert discounted.value <= plain.value + 1e-9

    def test_cost_scales_with_shots(self):
        # stddev ∝ 1/sqrt(shots) while executions ∝ shots: doubling the
        # budget must change the value by exactly sqrt(2)
        qc = _search_family(2)
        lo = search_cut_specs(qc, 4, objective="cost", shots=1000)
        hi = search_cut_specs(qc, 4, objective="cost", shots=2000)
        assert hi.value == pytest.approx(lo.value * np.sqrt(2), rel=1e-6)


class TestSearchProperties:
    """Every returned spec set validates and partitions within budget."""

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_qubits=st.integers(min_value=3, max_value=6),
        depth=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_circuits_partition_within_budget(
        self, num_qubits, depth, seed
    ):
        qc = random_circuit(num_qubits, depth=depth, seed=seed)
        budget = max(2, num_qubits - 1)
        try:
            specs = find_cut_specs(qc, budget)
        except CutError:
            return  # "no cut fits" is a legitimate outcome
        for spec in specs:
            assert isinstance(spec, CutSpec)
            spec.validate(qc)
        tree = partition_tree(qc, specs)
        assert all(f.num_qubits <= budget for f in tree.fragments)
        assert tree.num_fragments == len(specs) + 1

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_fragments=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_harness_chains_solved_as_chains(self, num_fragments, seed):
        qc, _ = chain_cut_circuit(
            num_fragments,
            cuts_per_group=1,
            fresh_per_fragment=2,
            depth=1,
            seed=seed,
        )
        specs = find_cut_specs(qc, 3, topology="chain")
        chain = partition_chain(qc, specs)
        assert all(f.num_qubits <= 3 for f in chain.fragments)


class TestPipelineAutoMode:
    """`cut_and_run_tree(circuit, backend, cuts=None, max_fragment_qubits=B)`
    end-to-end on the harness circuit families (the acceptance pin)."""

    def test_tree_auto_on_chain_family(self):
        qc, _ = chain_cut_circuit(
            3, cuts_per_group=1, fresh_per_fragment=2, depth=1, seed=3
        )
        res = cut_and_run_tree(
            qc, IdealBackend(), cuts=None, max_fragment_qubits=3,
            shots=4000, seed=1,
        )
        truth = simulate_statevector(qc).probabilities()
        assert all(f.num_qubits <= 3 for f in res.tree.fragments)
        assert total_variation(res.probabilities, truth) < 0.1

    def test_tree_auto_on_tree_family(self):
        qc, _ = tree_cut_circuit(
            [0, 0], cuts_per_group=1, fresh_per_fragment=2, depth=1, seed=4
        )
        res = cut_and_run_tree(
            qc, IdealBackend(), cuts=None, max_fragment_qubits=4,
            shots=4000, seed=2,
        )
        truth = simulate_statevector(qc).probabilities()
        assert all(f.num_qubits <= 4 for f in res.tree.fragments)
        assert total_variation(res.probabilities, truth) < 0.1

    def test_tree_auto_on_ghz_star(self):
        qc, _ = ghz_star_circuit(children=2, fresh_per_child=2)
        res = cut_and_run_tree(
            qc, IdealBackend(), cuts=None, max_fragment_qubits=4,
            shots=4000, seed=3,
        )
        truth = simulate_statevector(qc).probabilities()
        assert total_variation(res.probabilities, truth) < 0.1

    def test_chain_auto(self):
        qc, _ = chain_cut_circuit(
            3, cuts_per_group=1, fresh_per_fragment=2, depth=1, seed=3
        )
        res = cut_and_run_chain(
            qc, IdealBackend(), max_fragment_qubits=3, shots=4000, seed=4
        )
        assert res.tree.is_chain
        truth = simulate_statevector(qc).probabilities()
        assert total_variation(res.probabilities, truth) < 0.1

    def test_auto_with_analytic_golden(self):
        qc, _, _ = golden_chain_circuit(3, planted_groups=(0, 1), seed=5)
        res = cut_and_run_tree(
            qc, IdealBackend(), cuts=None, max_fragment_qubits=4,
            golden="analytic", shots=4000, seed=5,
        )
        truth = simulate_statevector(qc).probabilities()
        assert total_variation(res.probabilities, truth) < 0.1

    def test_bare_cutspec_accepted(self):
        qc = _search_family(0)
        spec = find_cuts(qc, 4)
        res = cut_and_run_tree(qc, IdealBackend(), spec, shots=1000, seed=1)
        assert res.tree.num_fragments == 2

    def test_specs_and_cuts_conflict(self):
        qc = _search_family(0)
        spec = find_cuts(qc, 4)
        with pytest.raises(CutError, match="alias"):
            cut_and_run_tree(
                qc, IdealBackend(), spec, cuts=spec, shots=100, seed=1
            )

    def test_num_fragments_forwarded(self):
        qc, _ = chain_cut_circuit(
            3, cuts_per_group=1, fresh_per_fragment=2, depth=1, seed=3
        )
        res = cut_and_run_tree(
            qc, IdealBackend(), cuts=None, max_fragment_qubits=5,
            num_fragments=3, shots=1000, seed=6,
        )
        assert res.tree.num_fragments == 3


class TestDagSearchHelpers:
    def test_wire_cut_positions_excludes_last(self):
        qc = Circuit(2).h(0).cx(0, 1).h(1)
        positions = CircuitDag(qc).wire_cut_positions()
        # wire 0: gates [0, 1] -> only 0; wire 1: gates [1, 2] -> only 1
        assert positions == [(0, 0), (1, 1)]

    def test_interaction_graph_weights(self):
        qc = Circuit(3).cx(0, 1).cx(0, 1).cx(1, 2)
        graph = CircuitDag(qc).qubit_interaction_graph()
        assert graph[0][1]["weight"] == 2
        assert graph[1][2]["weight"] == 1
        assert not graph.has_edge(0, 2)

    def test_balanced_bisection_partitions_qubits(self):
        qc = ghz_circuit(6)
        half_a, half_b = CircuitDag(qc).balanced_qubit_bisection(seed=0)
        assert half_a | half_b == set(range(6))
        assert not half_a & half_b
        assert abs(len(half_a) - len(half_b)) <= 1
