"""Equivalence of multi-fragment chain cutting against brute-force references.

The PR that introduced :mod:`repro.cutting.chain`, the per-fragment cache
pool and the generalised einsum reconstruction must be exact physics plus a
pure performance change:

* the einsum contraction has to match the brute-force reference (a Python
  row-loop over the *full basis product across all cut groups*) to ≤ 1e-9,
  for 3- and 4-fragment chains, ideal and fake-hardware data, full and
  neglected basis pools;
* exact chain data has to reconstruct the uncut circuit's distribution
  exactly (hypothesis-driven over random chain circuits);
* the noisy chain fast path has to reproduce per-variant circuit execution
  bit-identically (counts, clock, metadata) while the cache pool performs
  exactly one body transpile per fragment;
* a two-fragment chain must agree with the established pair path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import IdealBackend
from repro.backends.base import Backend
from repro.backends.fake_hardware import FakeHardwareBackend
from repro.core.neglect import reduced_bases
from repro.core.pipeline import cut_and_run_chain
from repro.cutting import bipartition, chain_from_pair, partition_chain
from repro.cutting.execution import (
    _split_joint_probs,
    exact_chain_data,
    exact_fragment_data,
    run_chain_fragments,
)
from repro.cutting.reconstruction import (
    build_chain_fragment_tensor,
    build_chain_fragment_tensor_reference,
    project_to_simplex,
    reconstruct_chain_distribution,
    reconstruct_chain_distribution_reference,
    reconstruct_distribution,
)
from repro.cutting.variants import chain_variant_tuples
from repro.harness.scaling import chain_cut_circuit
from repro.noise.kraus import (
    amplitude_damping,
    depolarizing,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.sim import simulate_statevector
from repro.transpile.coupling import CouplingMap
from repro.utils.rng import as_generator, derive_rng

TOL = 1e-9

_slow = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def make_chain(num_fragments, cuts_per_group, seed, **kwargs):
    qc, specs = chain_cut_circuit(
        num_fragments, cuts_per_group, fresh_per_fragment=2, depth=2,
        seed=seed, **kwargs,
    )
    return qc, partition_chain(qc, specs)


def make_noisy_device(num_qubits: int = 5) -> FakeHardwareBackend:
    nm = NoiseModel()
    nm.add_gate_noise(["sx", "x", "rz"], depolarizing(2e-3))
    nm.add_gate_noise(["sx", "x"], amplitude_damping(1.5e-3))
    nm.add_gate_noise(["cx"], two_qubit_depolarizing(8e-3))
    for q in range(num_qubits):
        nm.add_readout_error(q, ReadoutError(p01=0.015, p10=0.03))
    return FakeHardwareBackend(
        CouplingMap.linear(num_qubits), nm, name="chain_test_5q"
    )


def noisy_chain_data(chain, dev, shots, seed, variants=None):
    """Chain data through the cached noisy fast path + cache pool."""
    pool = dev.make_chain_cache_pool(chain)
    return run_chain_fragments(
        chain, dev, shots=shots, variants=variants, seed=seed, pool=pool
    )


def neglected_bases(chain):
    """A mixed neglect pattern: first group Y-golden, last group X+Z-golden."""
    golden = [None] * chain.num_groups
    golden[0] = {0: "Y"}
    golden[-1] = {chain.group_sizes[-1] - 1: ("X", "Z")}
    return [
        reduced_bases(k, gm) if gm else [("I", "X", "Y", "Z")] * k
        for k, gm in zip(chain.group_sizes, golden)
    ]


def variants_for_bases(chain, bases):
    """Per-fragment (inits, setting) lists covering the given group pools."""
    from repro.cutting.variants import (
        downstream_init_tuples,
        upstream_setting_tuples,
    )

    out = []
    for i, frag in enumerate(chain.fragments):
        inits = (
            downstream_init_tuples(frag.num_prep, bases[i - 1])
            if frag.num_prep
            else [()]
        )
        settings = (
            upstream_setting_tuples(
                frag.num_meas,
                [tuple(m for m in pool if m != "I") for pool in bases[i]],
            )
            if frag.num_meas
            else [()]
        )
        out.append([(a, s) for a in inits for s in settings])
    return out


# ---------------------------------------------------------------------------
# einsum path vs brute-force reference
# ---------------------------------------------------------------------------


class TestEinsumMatchesBruteForce:
    @pytest.mark.parametrize(
        "num_fragments,cuts,seed",
        [(3, 1, 11), (3, 2, 12), (3, [1, 2], 13), (4, 1, 14), (4, [2, 1, 1], 15)],
    )
    def test_ideal_full_pools(self, num_fragments, cuts, seed):
        _, chain = make_chain(num_fragments, cuts, seed)
        data = exact_chain_data(chain)
        fast = reconstruct_chain_distribution(data, postprocess="raw")
        ref = reconstruct_chain_distribution_reference(data)
        np.testing.assert_allclose(fast, ref, atol=TOL)

    @pytest.mark.parametrize(
        "num_fragments,cuts,seed", [(3, 2, 21), (4, 1, 22)]
    )
    def test_ideal_neglected_pools(self, num_fragments, cuts, seed):
        _, chain = make_chain(num_fragments, cuts, seed)
        bases = neglected_bases(chain)
        data = exact_chain_data(chain, variants=variants_for_bases(chain, bases))
        fast = reconstruct_chain_distribution(data, bases=bases, postprocess="raw")
        ref = reconstruct_chain_distribution_reference(data, bases=bases)
        np.testing.assert_allclose(fast, ref, atol=TOL)

    @pytest.mark.parametrize("num_fragments,cuts,seed", [(3, 1, 31), (4, 1, 32)])
    def test_noisy_full_pools(self, num_fragments, cuts, seed):
        _, chain = make_chain(num_fragments, cuts, seed)
        dev = make_noisy_device()
        data = noisy_chain_data(chain, dev, shots=300, seed=seed)
        fast = reconstruct_chain_distribution(data, postprocess="raw")
        ref = reconstruct_chain_distribution_reference(data)
        np.testing.assert_allclose(fast, ref, atol=TOL)

    def test_noisy_neglected_pools(self):
        _, chain = make_chain(3, 2, 33)
        bases = neglected_bases(chain)
        dev = make_noisy_device()
        data = noisy_chain_data(
            chain, dev, shots=200, seed=5,
            variants=variants_for_bases(chain, bases),
        )
        fast = reconstruct_chain_distribution(data, bases=bases, postprocess="raw")
        ref = reconstruct_chain_distribution_reference(data, bases=bases)
        np.testing.assert_allclose(fast, ref, atol=TOL)

    def test_per_fragment_tensors_match_reference(self):
        _, chain = make_chain(3, [1, 2], 41)
        data = exact_chain_data(chain)
        for i in range(chain.num_fragments):
            fast, rp_f, rn_f = build_chain_fragment_tensor(data, i)
            ref, rp_r, rn_r = build_chain_fragment_tensor_reference(data, i)
            assert rp_f == rp_r and rn_f == rn_r
            np.testing.assert_allclose(fast, ref, atol=TOL)


# ---------------------------------------------------------------------------
# exactness against the uncut circuit
# ---------------------------------------------------------------------------


class TestChainExactness:
    @pytest.mark.parametrize(
        "num_fragments,cuts,seed",
        [(3, 1, 51), (3, 2, 52), (4, 1, 53), (4, [1, 2, 1], 54)],
    )
    def test_exact_data_reconstructs_truth(self, num_fragments, cuts, seed):
        qc, chain = make_chain(num_fragments, cuts, seed)
        data = exact_chain_data(chain)
        p = reconstruct_chain_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=TOL)

    def test_two_fragment_chain_matches_pair_path(self):
        qc, specs = chain_cut_circuit(2, 2, fresh_per_fragment=2, depth=2, seed=61)
        pair = bipartition(qc, specs[0])
        chain = partition_chain(qc, specs)
        p_pair = reconstruct_distribution(
            exact_fragment_data(pair), postprocess="raw"
        )
        p_chain = reconstruct_chain_distribution(
            exact_chain_data(chain), postprocess="raw"
        )
        np.testing.assert_allclose(p_chain, p_pair, atol=TOL)

    def test_chain_from_pair_view(self):
        qc, specs = chain_cut_circuit(2, 1, fresh_per_fragment=2, depth=2, seed=62)
        pair = bipartition(qc, specs[0])
        chain = chain_from_pair(pair)
        p_chain = reconstruct_chain_distribution(
            exact_chain_data(chain), postprocess="raw"
        )
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p_chain, truth, atol=TOL)

    def test_golden_neglect_stays_exact_on_golden_chain(self):
        """Y-golden chain circuit: neglecting Y per group costs no accuracy."""
        qc, specs = chain_cut_circuit(
            3, 1, fresh_per_fragment=2, depth=2, seed=63, real_blocks=True
        )
        res = cut_and_run_chain(
            qc,
            IdealBackend(exact=True),
            specs,
            shots=1_000_000,
            golden="known",
            golden_maps=[{0: "Y"}, {0: "Y"}],
            seed=3,
            postprocess="raw",
        )
        truth = simulate_statevector(qc).probabilities()
        # exact=True backend rounds to integer counts at 1e6 shots
        np.testing.assert_allclose(res.probabilities, truth, atol=1e-5)
        full = cut_and_run_chain(
            qc, IdealBackend(exact=True), specs, shots=1_000_000, seed=3
        )
        assert res.total_executions < full.total_executions


# ---------------------------------------------------------------------------
# hypothesis property tests (satellite: random chain circuits)
# ---------------------------------------------------------------------------


class TestChainProperties:
    @_slow
    @given(
        seed=st.integers(0, 10_000),
        num_fragments=st.integers(3, 4),
        cuts=st.integers(1, 2),
    )
    def test_random_chain_reconstructs_uncut_distribution(
        self, seed, num_fragments, cuts
    ):
        """Fragment widths 2–4, 1–2 cuts per group: exact reconstruction."""
        if num_fragments == 4 and cuts == 2:
            cuts = [2, 1, 1]  # keep the row product small enough for CI
        qc, chain = make_chain(num_fragments, cuts, seed)
        assert all(2 <= f.num_qubits <= 4 for f in chain.fragments)
        data = exact_chain_data(chain)
        p = reconstruct_chain_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-8)

    @_slow
    @given(seed=st.integers(0, 10_000))
    def test_simplex_projection_normalises_chain_output(self, seed):
        """Sampled chain data + simplex postprocess = a genuine distribution."""
        qc, chain = make_chain(3, 1, seed)
        dev = IdealBackend()
        data = run_chain_fragments(
            chain, dev, shots=64, seed=seed,
            pool=dev.make_chain_cache_pool(chain),
        )
        p = reconstruct_chain_distribution(data, postprocess="simplex")
        assert np.all(p >= 0)
        assert np.isclose(p.sum(), 1.0)
        # and the projection itself is idempotent on its output
        np.testing.assert_allclose(project_to_simplex(p), p, atol=1e-12)


# ---------------------------------------------------------------------------
# noisy fast path: bit-identical to per-variant execution; pool call counts
# ---------------------------------------------------------------------------


class TestNoisyChainFastPath:
    def test_counts_clock_and_metadata_identical_to_execution(self):
        """Acceptance: every fragment's cached variants equal submitting the
        logical chain_variant circuits through ``run`` — bit for bit."""
        _, chain = make_chain(3, 1, 71)
        fast_dev = make_noisy_device()
        ref_dev = make_noisy_device()
        for i in range(chain.num_fragments):
            combos = chain_variant_tuples(chain, i)
            fast = fast_dev.run_chain_variants(
                chain, i, combos, shots=2000, seed=17 + i
            )
            ref = Backend.run_chain_variants(
                ref_dev, chain, i, combos, shots=2000, seed=17 + i
            )
            assert len(fast) == len(ref)
            for f, r in zip(fast, ref):
                assert f.counts == r.counts
                assert f.seconds == pytest.approx(r.seconds, rel=1e-12)
                assert (
                    f.metadata["transpiled_ops"] == r.metadata["transpiled_ops"]
                )
                assert f.metadata["layout"] == r.metadata["layout"]
        assert fast_dev.clock.now == pytest.approx(ref_dev.clock.now, rel=1e-12)
        assert [lbl for lbl, _ in fast_dev.clock.log] == [
            lbl for lbl, _ in ref_dev.clock.log
        ]

    def test_run_chain_fragments_matches_per_variant_records(self):
        """run_chain_fragments through the pool == per-variant submission."""
        _, chain = make_chain(3, 1, 72)
        dev = make_noisy_device()
        data = noisy_chain_data(chain, dev, shots=1500, seed=9)
        ref_dev = make_noisy_device()
        rng = as_generator(9)
        for i in range(chain.num_fragments):
            frag = chain.fragments[i]
            combos = chain_variant_tuples(chain, i)
            results = Backend.run_chain_variants(
                ref_dev, chain, i, combos, shots=1500,
                seed=derive_rng(rng, 0x60 + i),
            )
            for combo, res in zip(combos, results):
                np.testing.assert_array_equal(
                    data.records[i][combo],
                    _split_joint_probs(
                        res.probabilities(), frag.out_local, frag.cut_local
                    ),
                )
        assert data.modeled_seconds == pytest.approx(
            ref_dev.clock.now, rel=1e-12
        )

    @pytest.mark.parametrize("num_fragments", [3, 4])
    def test_pool_transpiles_once_per_fragment(self, num_fragments):
        """Acceptance: the cache pool does one body transpile/evolution bank
        per fragment, however many variants are served."""
        _, chain = make_chain(num_fragments, 1, 73)
        dev = make_noisy_device()
        pool = dev.make_chain_cache_pool(chain)
        noisy_chain_data(chain, dev, shots=100, seed=1)  # fresh pool inside
        data = run_chain_fragments(
            chain, dev, shots=100, seed=1, pool=pool
        )
        assert data.num_variants == sum(
            len(chain_variant_tuples(chain, i))
            for i in range(chain.num_fragments)
        )
        for i, cache in enumerate(pool):
            frag = chain.fragments[i]
            assert cache.stats["transpiles"] == 1
            assert cache.stats["body_evolutions"] == 4**frag.num_prep
            expected_rot = 3**frag.num_meas if frag.num_meas else 0
            assert cache.stats["rotation_evolutions"] == expected_rot
        # re-serving the same variants costs nothing new
        run_chain_fragments(chain, dev, shots=100, seed=2, pool=pool)
        for cache in pool:
            assert cache.stats["transpiles"] == 1

    def test_ideal_pool_shared_and_exactness_of_sampled_limit(self):
        """Ideal chain fast path converges to the exact reconstruction."""
        qc, chain = make_chain(3, 1, 74)
        dev = IdealBackend(exact=True)
        pool = dev.make_chain_cache_pool(chain)
        data = run_chain_fragments(
            chain, dev, shots=2_000_000, seed=0, pool=pool
        )
        p = reconstruct_chain_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-5)

    def test_exact_chain_data_rejects_noisy_pool(self):
        """Exact data is an ideal notion: a noisy pool is refused loudly."""
        from repro.exceptions import CutError

        _, chain = make_chain(3, 1, 75)
        noisy_pool = make_noisy_device().make_chain_cache_pool(chain)
        with pytest.raises(CutError):
            exact_chain_data(chain, pool=noisy_pool)

    def test_exact_chain_data_rejects_foreign_chain_pool(self):
        """A pool built for another chain must raise, not silently serve the
        other chain's distributions."""
        from repro.exceptions import CutError

        _, chain_a = make_chain(3, 1, 76)
        _, chain_b = make_chain(3, 1, 77)
        pool_a = IdealBackend().make_chain_cache_pool(chain_a)
        with pytest.raises(CutError):
            exact_chain_data(chain_b, pool=pool_a)


# ---------------------------------------------------------------------------
# chain variance model
# ---------------------------------------------------------------------------


class TestChainVariance:
    def test_exact_data_has_zero_variance(self):
        from repro.cutting.variance import chain_reconstruction_variance

        _, chain = make_chain(3, 1, 91)
        var = chain_reconstruction_variance(exact_chain_data(chain))
        assert var.shape == (1 << len(chain.output_order()),)
        np.testing.assert_array_equal(var, 0.0)

    def test_two_fragment_chain_matches_pair_model_to_first_order(self):
        """On N = 2 the chain model is the pair model minus its second-order
        Var·Var cross term: chain ≤ pair, and the gap is O(1/shots²)."""
        from repro.cutting.execution import run_fragments
        from repro.cutting.variance import (
            chain_reconstruction_variance,
            reconstruction_variance,
        )
        from repro.cutting.variants import chain_variant_tuples

        qc, specs = chain_cut_circuit(
            2, 1, fresh_per_fragment=2, depth=2, seed=92
        )
        pair = bipartition(qc, specs[0])
        chain = partition_chain(qc, specs)
        shots = 500
        pair_data = run_fragments(pair, IdealBackend(), shots=shots, seed=4)
        # mirror the pair records into chain records so both models see the
        # same empirical data
        records = [
            {
                ((), s): pair_data.upstream[s]
                for s in pair_data.upstream_settings()
            },
            {
                (i, ()): pair_data.downstream[i].reshape(-1, 1)
                for i in pair_data.downstream_inits()
            },
        ]
        from repro.cutting.execution import ChainFragmentData

        chain_data = ChainFragmentData(
            chain=chain, records=records, shots_per_variant=shots
        )
        v_chain = chain_reconstruction_variance(chain_data)
        v_pair = reconstruction_variance(pair_data)
        assert np.all(v_chain <= v_pair + 1e-15)
        # dropped cross term is second order: tiny relative to the total
        assert np.abs(v_pair - v_chain).max() <= 0.05 * v_pair.max() + 1e-12

    def test_prediction_tracks_empirical_variance(self):
        """The delta-method prediction tracks the true sampling variance of
        reconstructed entries within a small factor (aggregate)."""
        from repro.cutting.variance import (
            chain_predicted_stddev_tv,
            chain_reconstruction_variance,
        )

        _, chain = make_chain(3, 1, 93)
        dev = IdealBackend()
        shots = 400
        reps = []
        predicted = None
        for r in range(30):
            data = run_chain_fragments(
                chain, dev, shots=shots, seed=1000 + r,
                pool=dev.make_chain_cache_pool(chain),
            )
            reps.append(
                reconstruct_chain_distribution(data, postprocess="raw")
            )
            if predicted is None:
                predicted = chain_reconstruction_variance(data)
                assert chain_predicted_stddev_tv(data) > 0
        empirical = np.var(np.stack(reps), axis=0)
        ratio = predicted.sum() / empirical.sum()
        assert 0.3 < ratio < 3.0
