"""Smoke tests: every example script must run to completion.

Examples are the user-facing contract; each asserts its own correctness
internally (TV/accuracy bounds), so a zero exit status is a real check.
"""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in _EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship six
