"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so PEP 517
editable builds (which require ``bdist_wheel``) fail.  Keeping a ``setup.py``
and no ``[build-system]`` table lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path, which works everywhere.
"""

from setuptools import setup

setup()
