"""Ablation: readout mitigation composed with golden cutting (Fig. 3 +).

The paper compares raw device distributions against the noiseless truth;
this bench layers standard tensored readout mitigation on top of both the
uncut and the golden-cut pipelines, quantifying how much of Fig. 3's error
is readout (recoverable classically) vs gate noise (not).
"""

import numpy as np
import pytest

from repro.backends import IdealBackend, fake_device
from repro.core import cut_and_run, golden_ansatz
from repro.harness.report import format_table
from repro.metrics import weighted_distance
from repro.noise import ReadoutMitigator, calibrate_readout

from conftest import register_report

SHOTS = 8000
TRIALS = 4


def _one_trial(seed: int):
    spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=seed)
    qc = spec.circuit
    truth = IdealBackend().run_one(qc, shots=SHOTS, seed=seed ^ 0xFF).probabilities()

    device = fake_device(5)
    mitigator = calibrate_readout(device, 5, shots=20_000, seed=seed)

    raw_uncut = device.run_one(qc, shots=SHOTS, seed=seed).probabilities()
    mit_uncut = mitigator.apply(raw_uncut)

    run = cut_and_run(
        qc, fake_device(5), cuts=spec.cut_spec, shots=SHOTS,
        golden="known", golden_map={0: "Y"}, seed=seed,
    )
    raw_cut = run.probabilities
    # mitigate the reconstructed distribution (readout error acts on the
    # fragments' outputs identically, so the tensored correction applies)
    mit_cut = mitigator.apply(raw_cut)
    return (
        weighted_distance(raw_uncut, truth),
        weighted_distance(mit_uncut, truth),
        weighted_distance(raw_cut, truth),
        weighted_distance(mit_cut, truth),
    )


def test_mitigation_ablation_table(benchmark):
    benchmark.pedantic(_one_trial, args=(0,), rounds=1, iterations=1)
    series = np.array([_one_trial(1000 + t) for t in range(TRIALS)])
    means = series.mean(axis=0)
    rows = [
        {"config": "uncut, raw", "d_w": round(float(means[0]), 4)},
        {"config": "uncut, mitigated", "d_w": round(float(means[1]), 4)},
        {"config": "golden cut, raw", "d_w": round(float(means[2]), 4)},
        {"config": "golden cut, mitigated", "d_w": round(float(means[3]), 4)},
    ]
    register_report(
        format_table(
            rows,
            title=f"Ablation — readout mitigation on top of Fig. 3 "
            f"({TRIALS} trials x {SHOTS} shots)",
        )
    )
    # mitigation must help on average in both pipelines
    assert means[1] < means[0]
    assert means[3] < means[2]
