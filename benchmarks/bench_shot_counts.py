"""Reproduces the paper's §III-B execution-count claim.

"We avoided having to execute a third of the total shots by neglecting one
basis element, bringing the total number of circuit executions down from
4.5 × 10⁵ to 3.0 × 10⁵" — 50 trials × 1000 shots × (9 vs 6 variants).

Also tabulates the predicted device-time speedup for every (K, K_g, basis)
configuration, exposing the Z-golden asymmetry (terms shrink, downstream
runs do not).
"""

import pytest

from repro.backends import DeviceTimingModel
from repro.core import cost_report, predicted_speedup
from repro.harness.report import format_table

from conftest import register_report


def test_paper_shot_count_table(benchmark):
    benchmark.pedantic(cost_report, args=(1, None, 1000), rounds=1, iterations=1)
    rows = []
    for label, golden in (("standard", None), ("golden Y", {0: "Y"}),
                          ("golden X", {0: "X"}), ("golden Z", {0: "Z"})):
        rep = cost_report(1, golden, shots_per_variant=1000)
        rows.append(
            {
                "config": label,
                "rows": rep.reconstruction_rows,
                "upstream": rep.upstream_settings,
                "downstream": rep.downstream_inits,
                "variants": rep.num_variants,
                "executions (50 trials)": 50 * rep.total_executions,
            }
        )
    register_report(
        format_table(
            rows,
            title="§III-B — circuit executions, 50 trials x 1000 shots "
            "(paper: 450000 standard vs 300000 golden)",
        )
    )
    assert rows[0]["executions (50 trials)"] == 450_000
    assert rows[1]["executions (50 trials)"] == 300_000


def test_speedup_grid_table(benchmark):
    benchmark.pedantic(predicted_speedup, args=(1, {0: "Y"}), rounds=1, iterations=1)
    rows = []
    tm = DeviceTimingModel()
    for K in (1, 2, 3):
        for kg in range(K + 1):
            golden = {k: "Y" for k in range(kg)}
            s_exec = predicted_speedup(K, golden) if golden else 1.0
            s_time = (
                predicted_speedup(K, golden, timing=tm, circuit_seconds=2e-6)
                if golden
                else 1.0
            )
            rows.append(
                {
                    "K": K,
                    "K_golden": kg,
                    "speedup (executions)": round(s_exec, 3),
                    "speedup (modeled time)": round(s_time, 3),
                }
            )
    register_report(
        format_table(
            rows, title="Predicted speedups (executions and modeled device time)"
        )
    )
    one_golden = next(r for r in rows if r["K"] == 1 and r["K_golden"] == 1)
    assert one_golden["speedup (executions)"] == pytest.approx(1.5)


def test_cost_report_benchmark(benchmark):
    benchmark(cost_report, 3, {0: "Y", 1: "Y"}, 1000)
