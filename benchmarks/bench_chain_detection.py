"""Benchmarks of per-group golden detection on fragment chains.

The chain analogue of ``bench_online_detection.py``: measures what the
detection sweep costs and what it buys on a 3-fragment chain (two cut
groups) with golden bases planted in both groups:

* ``chain-detect-pipeline`` — the full ``golden="detect"`` pipeline
  (sequential pilot sweep + hypothesis tests + reduced production run),
  ideal backend;
* ``chain-analytic-finder`` — the exact left-to-right Definition-1 sweep
  from a shared ideal cache pool (the zero-shot alternative);
* ``chain-detect-noisy`` — the same detect pipeline on fake hardware,
  where the cache pool must keep the run at exactly N body transpiles;
* ``chain-detection-kernel`` — the statistics alone: per-candidate z-score
  vectors + Bonferroni verdicts over a prebuilt pilot data set.

An economics table (printed after the run) compares off / known /
analytic / detect total executions and TV error, mirroring the paper-mode
table of the pair bench.

Baselines live in ``benchmarks/BENCH_chain_detection.json``; refresh with
``python benchmarks/compare.py --write-baseline --suite chain_detection``.
"""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.backends.devices import fake_device
from repro.core.detection import detect_chain_golden_bases
from repro.core.golden import find_chain_golden_bases_analytic
from repro.core.neglect import chain_pilot_combos
from repro.core.pipeline import cut_and_run_chain
from repro.cutting.chain import partition_chain
from repro.cutting.execution import run_chain_fragments
from repro.harness.report import format_table
from repro.harness.scaling import golden_chain_circuit
from repro.metrics import total_variation
from repro.sim import simulate_statevector

from conftest import register_report

SHOTS = 4000
PILOT = 2000

_qc, _specs, _planted = golden_chain_circuit(
    3, planted_groups=(0, 1), fresh_per_fragment=2, depth=2, seed=0
)
_chain = partition_chain(_qc, _specs)
_truth = simulate_statevector(_qc).probabilities()


def _run(mode, backend=None, **kwargs):
    return cut_and_run_chain(
        _qc,
        backend if backend is not None else IdealBackend(),
        _specs,
        shots=SHOTS,
        golden=mode,
        golden_maps=_planted if mode == "known" else None,
        pilot_shots=PILOT if mode == "detect" else None,
        exploit_all=True,
        seed=3,
        **kwargs,
    )


@pytest.mark.benchmark(group="chain-detect-pipeline")
def test_chain_detect_pipeline(benchmark):
    run = benchmark(lambda: _run("detect"))
    assert run.golden_used == [{0: ("X", "Y")}, {0: ("X", "Y")}]


@pytest.mark.benchmark(group="chain-analytic-finder")
def test_chain_analytic_finder(benchmark):
    def find():
        return find_chain_golden_bases_analytic(_chain)

    found, selected = benchmark(find)
    assert selected == [{0: ("X", "Y")}, {0: ("X", "Y")}]


@pytest.mark.benchmark(group="chain-detect-noisy")
def test_chain_detect_noisy(benchmark):
    def run():
        return _run("detect", backend=fake_device(_qc.num_qubits))

    res = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    assert res.probabilities.sum() == pytest.approx(1.0, abs=1e-6)


@pytest.mark.benchmark(group="chain-detection-kernel")
def test_chain_detection_kernel(benchmark):
    """The statistics alone, on prebuilt pilot data for the interior
    fragment (prep contexts × settings — the widest Bonferroni family)."""
    combos = chain_pilot_combos(
        _chain.fragments[1].num_prep, _chain.fragments[1].num_meas
    )
    variants = [None] * _chain.num_fragments
    variants[1] = combos
    data = run_chain_fragments(
        _chain, IdealBackend(), shots=PILOT, variants=variants, seed=5
    )
    results = benchmark(lambda: detect_chain_golden_bases(data, 1))
    assert len(results) == 3


def test_chain_detection_economics_table(benchmark):
    benchmark.pedantic(lambda: _run("off"), rounds=1, iterations=1)
    rows = []
    for label, run in (
        ("off (CutQC baseline)", _run("off")),
        ("known a priori", _run("known")),
        ("analytic finder", _run("analytic")),
        ("detect (pilot + test)", _run("detect")),
    ):
        rows.append(
            {
                "strategy": label,
                "variants/fragment": "×".join(
                    str(c) for c in run.costs["variants_per_fragment"]
                ),
                "pilot": run.pilot_executions,
                "main": run.total_executions,
                "total": run.pilot_executions + run.total_executions,
                "TV error": round(
                    total_variation(run.probabilities, _truth), 4
                ),
            }
        )
    table = format_table(
        rows, title="chain golden detection economics (3 fragments, 2 groups)"
    )
    register_report(table)
    assert rows[-1]["main"] == rows[1]["main"]  # detect == known pools
