"""Benchmarks of the resilient execution path (ISSUE 7).

Measures what the retry layer costs when nothing goes wrong — the
contract is that guarding a run is (nearly) free:

* ``resilience-baseline`` — ``run_tree_fragments`` with no retry policy,
  served from a warmed cache pool (the production fast path);
* ``resilience-healthy-retry`` — the same run through the
  :class:`~repro.cutting.resilience.RetryEngine` batch-first path with
  boundary validation on; the ledger is asserted all-ok (zero retries,
  zero failures) and the records bit-identical to the baseline;
* ``resilience-faulted-retry`` — the same run against a
  :class:`~repro.backends.faults.FaultInjectionBackend` with a 30%
  transient rate, pricing the replay + backoff machinery under fire
  (still bit-identical records — no gate, informational);
* ``test_healthy_overhead_gate`` — asserts the healthy-retry mean within
  ``_MAX_HEALTHY_OVERHEAD``× of the baseline mean, the
  retry-overhead-when-healthy ≈ 0 guarantee.

Baselines live in ``benchmarks/BENCH_resilience.json``; refresh with
``python benchmarks/compare.py --write-baseline --suite resilience``.
"""

import numpy as np
import pytest

from repro.backends import (
    FaultInjectionBackend,
    FaultPlan,
    IdealBackend,
)
from repro.cutting.execution import run_tree_fragments
from repro.cutting.resilience import AttemptLedger, RetryPolicy
from repro.cutting.tree import partition_tree
from repro.harness.scaling import tree_cut_circuit

_SHOTS = 1000
_PARENTS = [0, 0]  # 3-node tree, two cut groups

#: healthy-path gate: the guarded run may cost at most this factor over
#: the unguarded baseline (one batched call either way; the delta is
#: ledger records + payload validation)
_MAX_HEALTHY_OVERHEAD = 1.6

_MEANS: dict[str, float] = {}


def _record_mean(benchmark, key: str) -> None:
    stats = getattr(benchmark, "stats", None)
    if stats is not None:  # absent under --benchmark-disable
        _MEANS[key] = stats.stats.mean


def _tree():
    qc, specs = tree_cut_circuit(
        _PARENTS, 1, fresh_per_fragment=2, depth=2, seed=930
    )
    return partition_tree(qc, specs)


_TREE = _tree()
_POOL = IdealBackend().make_tree_cache_pool(_TREE)
_BASELINE = run_tree_fragments(
    _TREE, IdealBackend(), shots=_SHOTS, seed=0, pool=_POOL
)


def _assert_identical(data):
    for i in range(_TREE.num_fragments):
        assert set(data.records[i]) == set(_BASELINE.records[i])
        for k in data.records[i]:
            np.testing.assert_array_equal(
                data.records[i][k], _BASELINE.records[i][k]
            )


@pytest.mark.benchmark(group="resilience-baseline")
def test_baseline_no_retry(benchmark):
    data = benchmark(
        lambda: run_tree_fragments(
            _TREE, IdealBackend(), shots=_SHOTS, seed=0, pool=_POOL
        )
    )
    _assert_identical(data)
    _record_mean(benchmark, "baseline")


@pytest.mark.benchmark(group="resilience-healthy-retry")
def test_healthy_retry(benchmark):
    def run():
        ledger = AttemptLedger()
        data = run_tree_fragments(
            _TREE,
            IdealBackend(),
            shots=_SHOTS,
            seed=0,
            pool=_POOL,
            retry=RetryPolicy(),
            ledger=ledger,
        )
        return data, ledger

    data, ledger = benchmark(run)
    _assert_identical(data)
    summary = ledger.summary()
    assert summary["retries"] == 0
    assert summary["failures"] == 0
    _record_mean(benchmark, "healthy_retry")


@pytest.mark.benchmark(group="resilience-faulted-retry")
def test_faulted_retry(benchmark):
    plan = FaultPlan(seed=11, transient_rate=0.3, max_consecutive_transients=2)

    def run():
        dev = FaultInjectionBackend(IdealBackend(), plan)
        return run_tree_fragments(
            _TREE,
            dev,
            shots=_SHOTS,
            seed=0,
            pool=_POOL,
            retry=RetryPolicy(max_attempts=4),
        )

    data = benchmark(run)
    _assert_identical(data)  # retries re-sample the original streams
    assert data.metadata["retry"]["failures"] > 0


def test_healthy_overhead_gate():
    """The resilience layer must be ≈ free when the backend is healthy."""
    if "baseline" not in _MEANS or "healthy_retry" not in _MEANS:
        pytest.skip("benchmark timing disabled; no means to compare")
    ratio = _MEANS["healthy_retry"] / _MEANS["baseline"]
    assert ratio < _MAX_HEALTHY_OVERHEAD, (
        f"healthy-path retry overhead {ratio:.2f}x exceeds "
        f"{_MAX_HEALTHY_OVERHEAD}x budget"
    )
