"""Ablation: reconstruction accuracy vs shot budget, standard vs golden.

Extends Fig. 3 along the shot axis: at equal *per-variant* shots the golden
protocol reconstructs with the same (slightly lower-variance) error while
executing 2/3 of the circuits; the delta-method variance model of
``repro.cutting.variance`` is validated against the measured errors.
"""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.core import cut_and_run, golden_ansatz
from repro.cutting.variance import predicted_stddev_tv
from repro.harness.report import format_table
from repro.metrics import total_variation
from repro.sim import simulate_statevector

from conftest import register_report

_spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=808)
_truth = simulate_statevector(_spec.circuit).probabilities()
_SHOT_GRID = (250, 1000, 4000, 16000)
_TRIALS = 8


def _tv_series(golden: str, shots: int) -> tuple[float, float]:
    """(mean TV error, mean predicted TV proxy) over trials."""
    tvs, preds = [], []
    for t in range(_TRIALS):
        run = cut_and_run(
            _spec.circuit, IdealBackend(), cuts=_spec.cut_spec, shots=shots,
            golden=golden, golden_map={0: "Y"} if golden == "known" else None,
            seed=1000 + t,
        )
        tvs.append(total_variation(run.probabilities, _truth))
        preds.append(run.predicted_stddev_tv())
    return float(np.mean(tvs)), float(np.mean(preds))


def test_accuracy_vs_shots_table(benchmark):
    benchmark.pedantic(_tv_series, args=("off", 250), rounds=1, iterations=1)
    rows = []
    for shots in _SHOT_GRID:
        tv_std, pred_std = _tv_series("off", shots)
        tv_gld, pred_gld = _tv_series("known", shots)
        rows.append(
            {
                "shots/variant": shots,
                "TV standard": round(tv_std, 4),
                "TV golden": round(tv_gld, 4),
                "predicted σ_TV": round(pred_std, 4),
                "executions std": shots * 9,
                "executions gold": shots * 6,
            }
        )
    register_report(
        format_table(
            rows,
            title=f"Ablation — accuracy vs shots ({_TRIALS} trials each; "
            "golden matches standard accuracy at 2/3 the executions)",
        )
    )
    # error decreases with shots; golden ~ standard at every budget
    tvs_std = [r["TV standard"] for r in rows]
    assert tvs_std[-1] < tvs_std[0]
    for r in rows:
        assert r["TV golden"] < 3.0 * max(r["TV standard"], 1e-3)
    # variance model calibrated within an order of magnitude
    for r in rows:
        assert 0.1 < r["predicted σ_TV"] / max(r["TV standard"], 1e-6) < 10.0
