"""Reproduces paper Fig. 3 — reconstruction accuracy on noisy hardware.

Paper protocol: 5-qubit and 7-qubit golden-ansatz circuits; weighted
distance (Eq. 17) of (a) the uncut circuit run on the device and (b) the
golden-cut reconstruction, both against a noiseless ground-truth sample;
10 trials × 10 000 shots; 95 % CI.

Expected shape (the paper's finding): the golden-cut bars are statistically
indistinguishable from the uncut bars — cutting costs no accuracy.
"""

import pytest

from repro.harness import run_fig3
from repro.harness.report import format_table

from conftest import paper_scale, register_report

TRIALS = 10 if paper_scale() else 5
SHOTS = 10_000 if paper_scale() else 5_000


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(sizes=(5, 7), trials=TRIALS, shots=SHOTS, seed=2023)


def test_fig3_accuracy_table(benchmark, fig3_result):
    """Benchmark one accuracy trial; report the full Fig. 3 table."""
    from repro.backends import fake_device
    from repro.backends.ideal import IdealBackend
    from repro.core import cut_and_run, golden_ansatz
    from repro.metrics import weighted_distance

    spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=1)
    truth = IdealBackend().run_one(spec.circuit, shots=SHOTS, seed=2).probabilities()

    def one_trial():
        device = fake_device(5)
        run = cut_and_run(
            spec.circuit, device, cuts=spec.cut_spec, shots=SHOTS,
            golden="known", golden_map={0: "Y"}, seed=3,
        )
        return weighted_distance(run.probabilities, truth)

    benchmark(one_trial)

    rows = fig3_result.rows()
    register_report(
        format_table(
            rows,
            columns=["label", "n", "mean", "ci95_low", "ci95_high"],
            title=f"Fig. 3 — weighted distance d_w to noiseless ground truth "
            f"({TRIALS} trials x {SHOTS} shots; paper: golden cut ≈ uncut "
            f"within 95% CI)",
        )
    )
    # shape assertions: same order of magnitude, every distance finite
    by = fig3_result.by_label()
    for n in (5, 7):
        uncut = by[f"{n}q uncut on hardware (d_w)"].mean
        cut = by[f"{n}q golden cut on hardware (d_w)"].mean
        assert 0 <= cut < 30 * max(uncut, 1e-3)
