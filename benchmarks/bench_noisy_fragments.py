"""Benchmarks of *noisy* fragment-variant execution (the hardware hot path).

Measures the cost of producing a full fragment-variant result set on the
fake-hardware (density-matrix) backend across cut counts, two ways:

* ``noisy-fragments-cached`` — the production fast path:
  :meth:`~repro.backends.fake_hardware.FakeHardwareBackend.run_variants`
  served by a fresh :class:`~repro.cutting.noisy_cache.NoisyFragmentSimCache`
  (one transpile per fragment body, ``1 + 4^K`` noisy evolutions total);
* ``noisy-fragments-reference`` — the pre-cache semantics: every variant
  circuit transpiled and density-evolved from scratch (``3^K + 6^K``
  transpiles + evolutions, what the paper's cost model counts).

Both paths produce identical counts (asserted once per case at ≤ 1e-9 on
the underlying distributions by ``tests/test_noisy_fast_path_equivalence``).
Baselines live in ``benchmarks/BENCH_noisy_fragments.json``; refresh with
``python benchmarks/compare.py --write-baseline --suite noisy_fragments``
and compare a working tree against them with
``python benchmarks/compare.py``.
"""

import pytest

from repro.backends.base import Backend
from repro.backends.fake_hardware import FakeHardwareBackend
from repro.cutting import bipartition
from repro.cutting.variants import (
    downstream_init_tuples,
    upstream_setting_tuples,
)
from repro.harness.scaling import multi_cut_golden_circuit
from repro.noise.kraus import (
    amplitude_damping,
    depolarizing,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.transpile.coupling import CouplingMap

_SHOTS = 1000


def _noise(num_qubits: int) -> NoiseModel:
    nm = NoiseModel()
    nm.add_gate_noise(["sx", "x", "rz"], depolarizing(2e-3))
    nm.add_gate_noise(["sx", "x"], amplitude_damping(1.5e-3))
    nm.add_gate_noise(["cx"], two_qubit_depolarizing(8e-3))
    for q in range(num_qubits):
        nm.add_readout_error(q, ReadoutError(p01=0.015, p10=0.03))
    return nm


def _device() -> FakeHardwareBackend:
    return FakeHardwareBackend(
        CouplingMap.linear(5), _noise(5), name="bench_noisy_5q"
    )


_PAIRS = {}
for K in (1, 2, 3):
    qc, spec = multi_cut_golden_circuit(
        K, extra_up=2, extra_down=2, depth=2, seed=900 + K
    )
    _PAIRS[K] = bipartition(qc, spec)


def _run_cached(pair):
    """Fast path: run_variants + fresh NoisyFragmentSimCache (cold)."""
    dev = _device()
    K = pair.num_cuts
    return dev.run_variants(
        pair,
        upstream_setting_tuples(K),
        downstream_init_tuples(K),
        shots=_SHOTS,
        seed=0,
    )


def _run_reference(pair):
    """Pre-cache semantics: every variant circuit through ``_execute``."""
    dev = _device()
    K = pair.num_cuts
    # the base-class implementation materialises and executes each circuit
    return Backend.run_variants(
        dev,
        pair,
        upstream_setting_tuples(K),
        downstream_init_tuples(K),
        shots=_SHOTS,
        seed=0,
    )


@pytest.mark.benchmark(group="noisy-fragments-cached")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_noisy_variants_cached(benchmark, K):
    pair = _PAIRS[K]
    results = benchmark(_run_cached, pair)
    assert len(results) == 3**K + 6**K


@pytest.mark.benchmark(group="noisy-fragments-reference")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_noisy_variants_reference(benchmark, K):
    pair = _PAIRS[K]
    results = benchmark.pedantic(
        _run_reference, args=(pair,), rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(results) == 3**K + 6**K


@pytest.mark.benchmark(group="noisy-fragments-warm")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_noisy_variants_warm_cache(benchmark, K):
    """Marginal cost of re-serving all variants from a warmed cache — the
    pilot→production reuse inside :func:`repro.core.pipeline.cut_and_run`."""
    pair = _PAIRS[K]
    K_ = pair.num_cuts
    dev = _device()
    settings = upstream_setting_tuples(K_)
    inits = downstream_init_tuples(K_)
    cache = dev.make_variant_cache(pair).warm(settings, inits)
    results = benchmark(
        lambda: dev.run_variants(
            pair, settings, inits, shots=_SHOTS, seed=0, cache=cache
        )
    )
    assert len(results) == 3**K + 6**K
