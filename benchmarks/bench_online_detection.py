"""Ablation: the economics of online golden-point detection (paper §IV).

The paper assumes a-priori knowledge of the golden point and leaves online
detection to future work, asking whether detection can pay for itself.
This bench measures exactly that trade: total executions (pilot + main) of

* standard (no detection, no savings),
* known (paper mode: free knowledge, full savings),
* detect (pilot cost, then savings) — single-shot and sequential pilots,

on a golden workload and on a generic workload where there is nothing to
find (detection must not lose accuracy, only waste its pilot).
"""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.core import cut_and_run, golden_ansatz, sequential_detect
from repro.cutting import bipartition
from repro.harness.report import format_table
from repro.metrics import total_variation
from repro.sim import simulate_statevector

from conftest import register_report

SHOTS = 4000
_spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=909)
_truth = simulate_statevector(_spec.circuit).probabilities()


def _run(mode, pilot=None):
    return cut_and_run(
        _spec.circuit, IdealBackend(), cuts=_spec.cut_spec, shots=SHOTS,
        golden=mode, golden_map={0: "Y"} if mode == "known" else None,
        pilot_shots=pilot, seed=3,
    )


@pytest.mark.benchmark(group="detection-pipelines")
def test_detect_pipeline(benchmark):
    run = benchmark(lambda: _run("detect", pilot=1000))
    assert run.golden_used == {0: "Y"}


@pytest.mark.benchmark(group="detection-pipelines")
def test_sequential_detector(benchmark):
    pair = bipartition(_spec.circuit, _spec.cut_spec)

    def seq():
        return sequential_detect(
            pair, IdealBackend(), stage_shots=(250, 1000, 4000), seed=4
        )

    res = benchmark(seq)
    assert "Y" in res.golden_map().get(0, [])


def test_detection_economics_table(benchmark):
    benchmark.pedantic(lambda: _run("off"), rounds=1, iterations=1)
    rows = []
    r_std = _run("off")
    r_known = _run("known")
    r_det = _run("detect", pilot=1000)
    pair = bipartition(_spec.circuit, _spec.cut_spec)
    seq = sequential_detect(
        pair, IdealBackend(), stage_shots=(250, 1000, 4000), seed=4
    )
    for label, run, pilot_cost in (
        ("standard (no detection)", r_std, 0),
        ("known a priori (paper)", r_known, 0),
        ("detect, single pilot", r_det, 1000 * 3),
    ):
        rows.append(
            {
                "strategy": label,
                "pilot executions": pilot_cost,
                "main executions": run.total_executions,
                "total": pilot_cost + run.total_executions,
                "TV error": round(total_variation(run.probabilities, _truth), 4),
            }
        )
    rows.append(
        {
            "strategy": "sequential detector alone",
            "pilot executions": seq.shots_spent,
            "main executions": "-",
            "total": seq.shots_spent,
            "TV error": "-",
        }
    )
    register_report(
        format_table(
            rows,
            title=f"§IV — online-detection economics at {SHOTS} shots/variant "
            "(detection pays off whenever pilot < standard − golden "
            f"= {9 * SHOTS - 6 * SHOTS} executions)",
        )
    )
    total_det = 3000 + r_det.total_executions
    assert total_det < r_std.total_executions  # detection paid for itself
    assert r_det.golden_used == {0: "Y"}
