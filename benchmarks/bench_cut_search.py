"""Benchmarks of the automatic cut-point searcher.

Measures what ``find_cut_specs`` costs and what it finds on the harness
circuit families:

* ``cut-search-exhaustive`` — the exhaustive reference engine on a small
  two-block circuit (the regime ``engine="auto"`` still enumerates);
* ``cut-search-greedy-width`` — the greedy engine minimising fragment
  width on a 4-fragment chain circuit too large to enumerate;
* ``cut-search-greedy-cost`` — the greedy engine under the variance-aware
  ``"cost"`` objective (predicted stddev × executions) on a Y-tree;
* ``cut-search-auto-pipeline`` — the full spec-free pipeline,
  ``cut_and_run_tree(qc, backend, cuts=None, max_fragment_qubits=B)``.

A quality table (printed after the run) pits greedy against exhaustive on
seeds where both run: objective value, cut count, partitions scored.

Baselines live in ``benchmarks/BENCH_cut_search.json``; refresh with
``python benchmarks/compare.py --write-baseline --suite cut_search``.
"""

import pytest

from repro.backends import IdealBackend
from repro.core.pipeline import cut_and_run_tree
from repro.cutting.search import search_cut_specs
from repro.harness.report import format_table
from repro.harness.scaling import chain_cut_circuit, tree_cut_circuit
from repro.metrics import total_variation
from repro.sim import simulate_statevector

from conftest import register_report

from tests.helpers import two_block_circuit

_small, _ = two_block_circuit(5, [0, 1, 2], [2, 3, 4], depth=2, seed=0)
_chain, _ = chain_cut_circuit(4, fresh_per_fragment=2, depth=2, seed=1)
_tree, _ = tree_cut_circuit([0, 0], fresh_per_fragment=2, depth=2, seed=2)


@pytest.mark.benchmark(group="cut-search-exhaustive")
def test_exhaustive_small(benchmark):
    res = benchmark(
        lambda: search_cut_specs(_small, 4, engine="exhaustive")
    )
    assert res.engine == "exhaustive"
    assert max(f.num_qubits for f in res.tree.fragments) <= 4


@pytest.mark.benchmark(group="cut-search-greedy-width")
def test_greedy_width_chain(benchmark):
    res = benchmark(
        lambda: search_cut_specs(_chain, 4, engine="greedy", seed=0)
    )
    assert res.engine == "greedy"
    assert max(f.num_qubits for f in res.tree.fragments) <= 4


@pytest.mark.benchmark(group="cut-search-greedy-cost")
def test_greedy_cost_tree(benchmark):
    def search():
        return search_cut_specs(
            _tree, 4, objective="cost", engine="greedy", shots=1000, seed=0
        )

    res = benchmark.pedantic(search, rounds=3, iterations=1, warmup_rounds=1)
    assert res.engine == "greedy"
    assert res.value > 0


@pytest.mark.benchmark(group="cut-search-auto-pipeline")
def test_auto_pipeline(benchmark):
    truth = simulate_statevector(_chain).probabilities()

    def run():
        return cut_and_run_tree(
            _chain,
            IdealBackend(),
            cuts=None,
            max_fragment_qubits=4,
            shots=4000,
            seed=3,
        )

    res = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    assert total_variation(res.probabilities, truth) < 0.1


def test_cut_search_quality_table(benchmark):
    benchmark.pedantic(
        lambda: search_cut_specs(_small, 4, engine="greedy", seed=0),
        rounds=1,
        iterations=1,
    )
    rows = []
    for seed in range(3):
        qc, _ = two_block_circuit(5, [0, 1, 2], [2, 3, 4], depth=2, seed=seed)
        ex = search_cut_specs(qc, 4, objective="cost", engine="exhaustive")
        gr = search_cut_specs(qc, 4, objective="cost", engine="greedy", seed=0)
        # a zero optimum means the best cut sits on a deterministic wire
        ratio = gr.value / ex.value if ex.value > 0 else 1.0
        rows.append(
            {
                "seed": seed,
                "exhaustive cost": round(ex.value, 2),
                "greedy cost": round(gr.value, 2),
                "ratio": round(ratio, 3),
                "cuts (ex/gr)": (
                    f"{sum(s.num_cuts for s in ex.specs)}"
                    f"/{sum(s.num_cuts for s in gr.specs)}"
                ),
                "scored (ex/gr)": f"{ex.evaluations}/{gr.evaluations}",
            }
        )
        assert gr.value <= 1.5 * ex.value
    table = format_table(
        rows, title="greedy vs exhaustive cut search (cost objective)"
    )
    register_report(table)
