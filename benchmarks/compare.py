"""Benchmark baseline writer and regression comparator.

Gives every future PR a perf trajectory to regress against.  Two modes:

Write (or refresh) the committed baselines::

    PYTHONPATH=src python benchmarks/compare.py --write-baseline

runs the hot-path suites through pytest-benchmark and dumps

* ``benchmarks/BENCH_reconstruction.json``   ← ``bench_reconstruction_kernel.py``
* ``benchmarks/BENCH_fragments.json``        ← ``bench_fragments.py``
* ``benchmarks/BENCH_noisy_fragments.json``  ← ``bench_noisy_fragments.py``
* ``benchmarks/BENCH_multi_fragment.json``   ← ``bench_multi_fragment.py``
* ``benchmarks/BENCH_chain_detection.json``  ← ``bench_chain_detection.py``
* ``benchmarks/BENCH_tree_fragments.json``   ← ``bench_tree_fragments.py``
* ``benchmarks/BENCH_sparse_reconstruction.json``
  ← ``bench_sparse_reconstruction.py``
* ``benchmarks/BENCH_resilience.json``       ← ``bench_resilience.py``
* ``benchmarks/BENCH_cut_search.json``       ← ``bench_cut_search.py``
* ``benchmarks/BENCH_dag_contraction.json``  ← ``bench_dag_contraction.py``
* ``benchmarks/BENCH_process_executor.json`` ← ``bench_process_executor.py``

Suites that opt into :func:`conftest.record_memory` also carry a
``mem_peak_bytes`` per benchmark (tracemalloc high-water mark of one
un-timed run); the comparison prints a memory column and flags a peak
growing beyond ``--max-regression`` exactly like a slowdown.

``--suite NAME`` (repeatable; matches the json/bench file stem) restricts
either mode to a subset, e.g. ``--write-baseline --suite noisy_fragments``
after intentionally shifting only the noisy path.

Compare the working tree against the baselines (the default)::

    PYTHONPATH=src python benchmarks/compare.py

re-runs both suites into a temporary directory and prints a per-benchmark
table of ``baseline_mean / current_mean`` speedups.  ``--fail-on-regression``
exits non-zero when any benchmark got slower than ``--max-regression``
(default 1.5×) — wire this into CI once machines are stable enough.

Timings are machine-dependent: refresh baselines when the hardware changes,
and read ratios, not absolute times.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
SUITES = {
    "BENCH_reconstruction.json": "bench_reconstruction_kernel.py",
    "BENCH_fragments.json": "bench_fragments.py",
    "BENCH_noisy_fragments.json": "bench_noisy_fragments.py",
    "BENCH_multi_fragment.json": "bench_multi_fragment.py",
    "BENCH_chain_detection.json": "bench_chain_detection.py",
    "BENCH_tree_fragments.json": "bench_tree_fragments.py",
    "BENCH_sparse_reconstruction.json": "bench_sparse_reconstruction.py",
    "BENCH_resilience.json": "bench_resilience.py",
    "BENCH_cut_search.json": "bench_cut_search.py",
    "BENCH_dag_contraction.json": "bench_dag_contraction.py",
    "BENCH_process_executor.json": "bench_process_executor.py",
}


def select_suites(names: "list[str] | None") -> dict[str, str]:
    """Restrict SUITES to the requested stems (``noisy_fragments``, ...)."""
    if not names:
        return SUITES
    out = {}
    for name in names:
        for json_name, bench_file in SUITES.items():
            stem = json_name[len("BENCH_") : -len(".json")]
            if name in (stem, json_name, bench_file):
                out[json_name] = bench_file
                break
        else:
            stems = [j[len("BENCH_") : -len(".json")] for j in SUITES]
            raise SystemExit(f"unknown suite {name!r}; choose from {stems}")
    return out


def run_suite(bench_file: str, json_path: Path) -> None:
    """Run one benchmark file with pytest-benchmark, dumping JSON results."""
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_DIR / bench_file),
        "--benchmark-only",
        "-q",
        f"--benchmark-json={json_path}",
    ]
    print(f"$ {' '.join(cmd)}")
    subprocess.run(cmd, check=True)


def load_stats(json_path: Path) -> dict[str, dict]:
    """benchmark name -> {mean seconds, tracemalloc peak bytes (or None)}.

    ``mem_peak_bytes`` comes from :func:`conftest.record_memory`; suites
    that never call it simply have no memory column, so old baselines
    keep comparing cleanly.
    """
    payload = json.loads(json_path.read_text())
    return {
        b["fullname"]: {
            "mean": b["stats"]["mean"],
            "mem": b.get("extra_info", {}).get("mem_peak_bytes"),
        }
        for b in payload["benchmarks"]
    }


def write_baselines(suites: dict[str, str]) -> None:
    for json_name, bench_file in suites.items():
        run_suite(bench_file, BENCH_DIR / json_name)
        print(f"wrote {BENCH_DIR / json_name}")


def compare(
    max_regression: float, fail_on_regression: bool, suites: dict[str, str]
) -> int:
    regressions: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        for json_name, bench_file in suites.items():
            baseline_path = BENCH_DIR / json_name
            if not baseline_path.exists():
                print(f"!! no baseline {baseline_path}; run --write-baseline first")
                continue
            current_path = Path(tmp) / json_name
            run_suite(bench_file, current_path)
            baseline = load_stats(baseline_path)
            current = load_stats(current_path)
            print(f"\n== {bench_file} (vs {json_name}) ==")
            width = max((len(n) for n in current), default=0)
            for name, stats in sorted(current.items()):
                mean = stats["mean"]
                base = baseline.get(name)
                if base is None:
                    print(f"{name:<{width}}  NEW        {mean * 1e3:9.3f} ms")
                    continue
                ratio = (
                    mean / base["mean"] if base["mean"] > 0 else float("inf")
                )
                flag = ""
                if ratio > max_regression:
                    flag = "  <-- REGRESSION"
                    regressions.append(f"{name}: {ratio:.2f}x slower")
                mem_col = ""
                if stats["mem"] is not None and base["mem"]:
                    mem_ratio = stats["mem"] / base["mem"]
                    mem_col = (
                        f"  mem {base['mem'] / 1e6:8.2f} MB ->"
                        f" {stats['mem'] / 1e6:8.2f} MB"
                    )
                    if mem_ratio > max_regression:
                        flag = "  <-- MEM REGRESSION"
                        regressions.append(
                            f"{name}: {mem_ratio:.2f}x more peak memory"
                        )
                print(
                    f"{name:<{width}}  {base['mean'] * 1e3:9.3f} ms ->"
                    f" {mean * 1e3:9.3f} ms"
                    f"  ({1 / ratio:5.2f}x speedup){mem_col}{flag}"
                )
    if regressions:
        print("\nregressions beyond threshold:")
        for r in regressions:
            print(f"  {r}")
        if fail_on_regression:
            return 1
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh benchmarks/BENCH_*.json instead of comparing",
    )
    ap.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        help="slowdown ratio flagged as a regression (default 1.5)",
    )
    ap.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when a regression is flagged",
    )
    ap.add_argument(
        "--suite",
        action="append",
        help="restrict to one suite (stem of BENCH_*.json; repeatable)",
    )
    args = ap.parse_args()
    suites = select_suites(args.suite)
    if args.write_baseline:
        write_baselines(suites)
        return 0
    return compare(args.max_regression, args.fail_on_regression, suites)


if __name__ == "__main__":
    raise SystemExit(main())
