"""Benchmarks of fragment-variant execution (the simulation hot path).

Measures the cost of producing a full :class:`~repro.cutting.execution.FragmentData`
across cut counts, three ways:

* ``fragments-exact`` — the production cached path
  (:func:`~repro.cutting.execution.exact_fragment_data`): one upstream body
  simulation + one batched downstream simulation serve all ``3^K + 6^K``
  variants;
* ``fragments-exact-reference`` — the pre-cache semantics: every variant
  circuit simulated from scratch (the ``3^K + 6^K`` scaling the paper's
  cost model counts);
* ``fragments-sampled`` — :func:`~repro.cutting.execution.run_fragments`
  against the ideal backend (cache + multinomial sampling).

Baselines live in ``benchmarks/BENCH_fragments.json``; refresh with
``python benchmarks/compare.py --write-baseline`` and compare a working
tree against them with ``python benchmarks/compare.py``.
"""

import pytest

from repro.backends import IdealBackend
from repro.cutting import bipartition
from repro.cutting.execution import _split_upstream_probs, exact_fragment_data
from repro.cutting.execution import run_fragments
from repro.cutting.variants import (
    downstream_init_tuples,
    downstream_variant,
    upstream_setting_tuples,
    upstream_variant,
)
from repro.harness.scaling import multi_cut_golden_circuit
from repro.sim import simulate_statevector

_PAIRS = {}
for K in (1, 2, 3):
    qc, spec = multi_cut_golden_circuit(K, extra_up=2, extra_down=2, depth=2, seed=900 + K)
    _PAIRS[K] = bipartition(qc, spec)


def _exact_reference(pair):
    """Simulate every physical variant circuit (pre-cache semantics)."""
    K = pair.num_cuts
    upstream = {
        tuple(s): _split_upstream_probs(
            simulate_statevector(upstream_variant(pair, s)).probabilities(), pair
        )
        for s in upstream_setting_tuples(K)
    }
    downstream = {
        tuple(i): simulate_statevector(downstream_variant(pair, i)).probabilities()
        for i in downstream_init_tuples(K)
    }
    return upstream, downstream


@pytest.mark.benchmark(group="fragments-exact")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_exact_fragment_data_cached(benchmark, K):
    pair = _PAIRS[K]
    data = benchmark(exact_fragment_data, pair)
    assert data.num_variants == 3**K + 6**K


@pytest.mark.benchmark(group="fragments-exact-reference")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_exact_fragment_data_reference(benchmark, K):
    pair = _PAIRS[K]
    upstream, downstream = benchmark(_exact_reference, pair)
    assert len(upstream) + len(downstream) == 3**K + 6**K


@pytest.mark.benchmark(group="fragments-sampled")
@pytest.mark.parametrize("K", [1, 2])
def test_run_fragments_ideal(benchmark, K):
    pair = _PAIRS[K]
    data = benchmark(
        lambda: run_fragments(pair, IdealBackend(), shots=1000, seed=0)
    )
    assert data.num_variants == 3**K + 6**K


# ---------------------------------------------------------------------------
# Batched upstream rotation application (ROADMAP lever, PR 5 satellite).
# At K = 4 the tree cache must rotate its cached column bank for all
# ``3^4 = 81`` measurement settings; the per-setting loop re-reads the whole
# bank 81 times, the batched path builds every rotated bank with one stacked
# tensor contraction per cut (``warm_rotations``).

_ROT_K = 4


def _rotation_fragment():
    from repro.cutting.tree import partition_tree
    from repro.harness.scaling import tree_cut_circuit

    qc, specs = tree_cut_circuit(
        [0], _ROT_K, fresh_per_fragment=2, depth=2, seed=940
    )
    tree = partition_tree(qc, specs)
    frag = tree.fragments[0]
    assert frag.num_meas == _ROT_K
    return frag


_ROT_FRAG = _rotation_fragment()


@pytest.mark.benchmark(group="rotations-K4")
def test_rotations_per_setting_loop(benchmark):
    from repro.cutting.cache import TreeFragmentSimCache
    from repro.cutting.variants import upstream_setting_tuples

    settings = upstream_setting_tuples(_ROT_K)

    def run():
        cache = TreeFragmentSimCache(_ROT_FRAG)
        for s in settings:
            cache._rotated_columns(s)
        return cache

    cache = benchmark(run)
    assert len(cache._rotated) == 3**_ROT_K


@pytest.mark.benchmark(group="rotations-K4")
def test_rotations_batched_stack(benchmark):
    from repro.cutting.cache import TreeFragmentSimCache
    from repro.cutting.variants import upstream_setting_tuples

    settings = upstream_setting_tuples(_ROT_K)

    def run():
        cache = TreeFragmentSimCache(_ROT_FRAG)
        cache.warm_rotations(settings)
        return cache

    cache = benchmark(run)
    assert len(cache._rotated) == 3**_ROT_K
