"""Benchmarks of fragment-tree execution and reconstruction (PR 5).

Measures the cost of producing and reconstructing a genuine **5-node
fragment tree** result set (a two-level topology whose interior node feeds
two child groups) three ways:

* ``tree-noisy-cached`` — the production fast path:
  :meth:`~repro.backends.fake_hardware.FakeHardwareBackend.run_tree_variants`
  served by a fresh :class:`~repro.cutting.cache.TreeCachePool` (one
  transpile per node body, ``4^{K_in}`` body evolutions + ``3^{K_out}``
  batched rotation passes per node);
* ``tree-noisy-reference`` — the pre-cache semantics: every combined
  ``(inits, setting)`` variant circuit transpiled and density-evolved from
  scratch;
* ``tree-noisy-warm`` — marginal cost of re-serving every variant from a
  warmed pool (the repeat-consumer path inside ``cut_and_run_tree``).

Plus the classical side:

* ``tree-reconstruction`` — the leaves-to-root contraction over the five
  per-node tensors vs the brute-force row-loop over the full basis product
  across all four cut groups.

Baselines live in ``benchmarks/BENCH_tree_fragments.json``; refresh with
``python benchmarks/compare.py --write-baseline --suite tree_fragments``
and compare a working tree against them with
``python benchmarks/compare.py``.
"""

import pytest

from repro.backends.base import Backend
from repro.backends.fake_hardware import FakeHardwareBackend
from repro.cutting.execution import exact_tree_data, run_tree_fragments
from repro.cutting.reconstruction import (
    reconstruct_tree_distribution,
    reconstruct_tree_distribution_reference,
)
from repro.cutting.tree import partition_tree
from repro.cutting.variants import tree_variant_tuples
from repro.harness.scaling import tree_cut_circuit
from repro.noise.kraus import (
    amplitude_damping,
    depolarizing,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.transpile.coupling import CouplingMap

_SHOTS = 1000
_PARENTS = [0, 0, 1, 1]  # two-level tree, interior node with 2 child groups


def _noise(num_qubits: int) -> NoiseModel:
    nm = NoiseModel()
    nm.add_gate_noise(["sx", "x", "rz"], depolarizing(2e-3))
    nm.add_gate_noise(["sx", "x"], amplitude_damping(1.5e-3))
    nm.add_gate_noise(["cx"], two_qubit_depolarizing(8e-3))
    for q in range(num_qubits):
        nm.add_readout_error(q, ReadoutError(p01=0.015, p10=0.03))
    return nm


def _device() -> FakeHardwareBackend:
    return FakeHardwareBackend(
        CouplingMap.linear(6), _noise(6), name="bench_tree_6q"
    )


def _tree():
    qc, specs = tree_cut_circuit(
        _PARENTS, 1, fresh_per_fragment=2, depth=2, seed=920
    )
    return partition_tree(qc, specs)


_TREE = _tree()
_VARIANTS = [
    tree_variant_tuples(_TREE, i) for i in range(_TREE.num_fragments)
]
_NUM_VARIANTS = sum(len(v) for v in _VARIANTS)


def _run_cached():
    """Fast path: run_tree_fragments + fresh TreeCachePool (cold)."""
    dev = _device()
    pool = dev.make_tree_cache_pool(_TREE)
    return run_tree_fragments(_TREE, dev, shots=_SHOTS, seed=0, pool=pool)


def _run_reference():
    """Pre-cache semantics: every combined variant through ``_execute``."""
    dev = _device()
    out = []
    for i, combos in enumerate(_VARIANTS):
        out.extend(
            Backend.run_tree_variants(
                dev, _TREE, i, combos, shots=_SHOTS, seed=0
            )
        )
    return out


@pytest.mark.benchmark(group="tree-noisy-cached")
def test_tree_noisy_cached(benchmark):
    data = benchmark(_run_cached)
    assert data.num_variants == _NUM_VARIANTS


@pytest.mark.benchmark(group="tree-noisy-reference")
def test_tree_noisy_reference(benchmark):
    results = benchmark.pedantic(
        _run_reference, rounds=2, iterations=1, warmup_rounds=1
    )
    assert len(results) == _NUM_VARIANTS


@pytest.mark.benchmark(group="tree-noisy-warm")
def test_tree_noisy_warm_pool(benchmark):
    """Marginal cost of re-serving every variant from a warmed pool."""
    dev = _device()
    pool = dev.make_tree_cache_pool(_TREE).warm(_VARIANTS)
    data = benchmark(
        lambda: run_tree_fragments(
            _TREE, dev, shots=_SHOTS, seed=0, pool=pool
        )
    )
    assert data.num_variants == _NUM_VARIANTS


_EXACT_DATA = exact_tree_data(_TREE)


@pytest.mark.benchmark(group="tree-reconstruction")
def test_tree_reconstruction_contraction(benchmark):
    p = benchmark(
        lambda: reconstruct_tree_distribution(_EXACT_DATA, postprocess="raw")
    )
    assert p.size == 1 << len(_TREE.output_order())


@pytest.mark.benchmark(group="tree-reconstruction")
def test_tree_reconstruction_reference(benchmark):
    p = benchmark(
        lambda: reconstruct_tree_distribution_reference(_EXACT_DATA)
    )
    assert p.size == 1 << len(_TREE.output_order())
