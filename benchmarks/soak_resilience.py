"""Seeded fault-injection soak of the resilient execution path (ISSUE 7).

Standalone CI gate (no pytest): runs a matrix of seeded fault plans and
retry policies over one fragment tree and asserts the load-bearing
contracts of :mod:`repro.cutting.resilience`:

* every retried run completes **bit-identical** to the fault-free run
  (retries re-sample the variant's original RNG stream);
* serial, threaded and process-pool execution agree on records *and* on
  the canonical (order-insensitive) attempt ledger;
* a permanently dead variant family degrades into a rigorous widened
  ``tv_bound()`` that really bounds the measured TV error;
* a checkpointed run aborted mid-tree resumes bit-identically without
  re-executing finished fragments;
* a hopeless backend hits the deadline instead of burning forever.

Everything is seeded — the soak either always passes or always fails.

Run with::

    PYTHONPATH=src python benchmarks/soak_resilience.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.backends import (
    DeadVariantFamily,
    FaultInjectionBackend,
    FaultPlan,
    FaultyBackendFactory,
    IdealBackend,
)
from repro.core import cut_and_run_tree
from repro.cutting import (
    AttemptLedger,
    RetryPolicy,
    TreeCheckpoint,
    partition_tree,
    run_tree_fragments,
)
from repro.exceptions import DeadlineExceededError
from repro.harness.scaling import tree_cut_circuit
from repro.metrics import total_variation
from repro.parallel import run_tree_fragments_parallel
from repro.sim import simulate_statevector

SHOTS = 300
SEED = 7

#: the transient-fault matrix: every cell must reproduce the fault-free
#: records bit-identically through the retry engine
TRANSIENT_CELLS = [
    ("transient-10%", FaultPlan(seed=1, transient_rate=0.1), RetryPolicy()),
    (
        "transient-30%",
        FaultPlan(seed=11, transient_rate=0.3, max_consecutive_transients=2),
        RetryPolicy(max_attempts=4),
    ),
    (
        "latency-spikes",
        FaultPlan(seed=3, transient_rate=0.1, latency_rate=0.4, latency_seconds=2.0),
        RetryPolicy(max_attempts=4),
    ),
    (
        "corrupt+shortfall",
        FaultPlan(seed=5, shortfall_rate=0.15, corrupt_rate=0.15),
        RetryPolicy(max_attempts=6),
    ),
    (
        "mixed-storm",
        FaultPlan(
            seed=17,
            transient_rate=0.3,
            max_consecutive_transients=2,
            shortfall_rate=0.1,
            corrupt_rate=0.1,
        ),
        RetryPolicy(max_attempts=8),
    ),
]


def build_tree():
    qc, specs = tree_cut_circuit([0, 0], 1, fresh_per_fragment=2, depth=2, seed=83)
    return qc, specs, partition_tree(qc, specs)


def assert_identical(a, b, label):
    for i in range(a.tree.num_fragments):
        assert set(a.records[i]) == set(b.records[i]), f"{label}: variant sets differ"
        for k in a.records[i]:
            np.testing.assert_array_equal(
                a.records[i][k], b.records[i][k], err_msg=f"{label}: {k}"
            )


def soak_transients(tree, baseline):
    rows = []
    for label, plan, policy in TRANSIENT_CELLS:
        ledger = AttemptLedger()
        data = run_tree_fragments(
            tree,
            FaultInjectionBackend(IdealBackend(), plan),
            shots=SHOTS,
            seed=SEED,
            retry=policy,
            ledger=ledger,
        )
        assert_identical(baseline, data, label)
        summary = ledger.summary()
        rows.append((label, summary["attempts"], summary["failures"]))
    assert sum(r[2] for r in rows) > 0, "no fault ever fired; soak is vacuous"
    return rows


def soak_parallel(tree):
    # the parallel executor derives one stream per global task index, so
    # its fault-free reference is the parallel serial-mode run
    baseline = run_tree_fragments_parallel(
        tree, IdealBackend, shots=SHOTS, seed=SEED, mode="serial"
    )
    plan = FaultPlan(seed=11, transient_rate=0.3, max_consecutive_transients=2)
    policy = RetryPolicy(max_attempts=4)
    # FaultyBackendFactory is picklable, so the same factory drives the
    # in-process modes and the process pool (which ships it to workers)
    factory = FaultyBackendFactory(IdealBackend, plan)
    ledgers, failures = {}, 0
    for mode in ("serial", "thread", "process"):
        ledgers[mode] = AttemptLedger()
        data = run_tree_fragments_parallel(
            tree,
            factory,
            shots=SHOTS,
            seed=SEED,
            max_workers=4,
            mode=mode,
            retry=policy,
            ledger=ledgers[mode],
        )
        assert_identical(baseline, data, f"parallel-{mode}")
        failures = ledgers[mode].summary()["failures"]
    canon = ledgers["serial"].canonical()
    for mode in ("thread", "process"):
        assert ledgers[mode].canonical() == canon, (
            f"serial and {mode} ledgers diverged"
        )
    return [
        (
            "parallel serial==thread==process",
            len(ledgers["process"].records),
            failures,
        )
    ]


def soak_degradation(qc, specs, tree):
    truth = simulate_statevector(qc).probabilities()
    plan = FaultPlan(seed=0, dead=(DeadVariantFamily(0, "Y", 0),))
    result = cut_and_run_tree(
        qc,
        FaultInjectionBackend(IdealBackend(), plan),
        specs,
        shots=4 * SHOTS,
        seed=SEED,
        retry=RetryPolicy(max_attempts=2),
        on_exhausted="degrade",
    )
    assert result.degradation_bound == 0.5, result.degradation_bound
    measured = total_variation(np.asarray(result.probabilities), truth)
    assert measured <= result.tv_bound(), (
        f"measured TV {measured:.4f} exceeds widened bound {result.tv_bound():.4f}"
    )
    return [("degrade dead-Y family", len(result.degraded), measured)]


def soak_checkpoint(tree, baseline):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ck"
        run_tree_fragments(
            tree,
            IdealBackend(),
            shots=SHOTS,
            seed=SEED,
            checkpoint=TreeCheckpoint(path, tree, SHOTS),
        )
        # abort after fragment 0: later fragments must re-execute on resume
        for i in range(1, tree.num_fragments):
            frag_file = path / f"fragment_{i}.npz"
            if frag_file.exists():
                frag_file.unlink()
        resumed = run_tree_fragments(
            tree,
            IdealBackend(),
            shots=SHOTS,
            seed=SEED,
            checkpoint=TreeCheckpoint(path, tree, SHOTS),
        )
        assert_identical(baseline, resumed, "checkpoint-resume")
    return [("checkpoint resume", tree.num_fragments - 1, 0)]


def soak_deadline(tree):
    plan = FaultPlan(seed=0, transient_rate=1.0)
    policy = RetryPolicy(max_attempts=50, base_delay=1.0, max_delay=2.0, deadline=3.0)
    try:
        run_tree_fragments(
            tree,
            FaultInjectionBackend(IdealBackend(), plan),
            shots=SHOTS,
            seed=SEED,
            retry=policy,
        )
    except DeadlineExceededError:
        return [("deadline stops hopeless run", 1, 1)]
    raise AssertionError("hopeless run did not hit its deadline")


def main() -> int:
    t0 = time.monotonic()
    qc, specs, tree = build_tree()
    baseline = run_tree_fragments(tree, IdealBackend(), shots=SHOTS, seed=SEED)
    rows = []
    rows += soak_transients(tree, baseline)
    rows += soak_parallel(tree)
    rows += soak_degradation(qc, specs, tree)
    rows += soak_checkpoint(tree, baseline)
    rows += soak_deadline(tree)
    width = max(len(r[0]) for r in rows)
    print(f"{'cell':<{width}}  detail")
    for label, a, b in rows:
        print(f"{label:<{width}}  {a} / {b}")
    print(f"resilience soak passed ({len(rows)} cells, {time.monotonic() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
