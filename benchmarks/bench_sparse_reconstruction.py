"""Dense vs sparse tree reconstruction — the first 20+-qubit workload.

The dense contraction carries a full ``2^n`` probability vector to the
root, which walls out around ~24 qubits (a 25-qubit float64 vector is
268 MB, and the contraction holds more than one).  The ``prune=`` sparse
path (:mod:`repro.cutting.sparse`) prunes outcome columns *during* the
leaves-to-root contraction, so memory follows the number of kept
outcomes instead of ``2^n``.

Workload: the :func:`~repro.harness.scaling.ghz_star_circuit` family — a
wide GHZ star whose fragments stay ≤ 8 qubits while the full register
grows without bound, with per-child ``ry`` perturbations keeping the
exact distribution analytically known (``2^{children+1}`` outcomes).

* ``sparse-25q`` — the headline: a 25-qubit reconstruction through
  ``threshold(1e-5)`` on exact fragment data (float64 and the float32
  fast path).  Asserted: measured TV against the analytic truth is
  within ``prune_bound`` (+ 0 sampling error — exact data), and the
  tracemalloc peak is far below the dense path's 268 MB floor.
* ``recon-13q`` / ``recon-16q`` — dense vs sparse speed and peak-memory
  curves where both paths still fit: dense stays ≤ 1e-9 of the truth,
  tight-threshold sparse degrades gracefully to the same answer.

Baselines live in ``benchmarks/BENCH_sparse_reconstruction.json``;
refresh with
``python benchmarks/compare.py --write-baseline --suite sparse_reconstruction``.
Memory is recorded via :func:`conftest.record_memory` and gated by
``compare.py`` exactly like time.
"""

import numpy as np
import pytest

from conftest import record_memory, register_report

from repro.cutting.execution import exact_tree_data
from repro.cutting.reconstruction import reconstruct_tree_distribution
from repro.cutting.sparse import threshold
from repro.cutting.tree import partition_tree
from repro.harness.scaling import ghz_star_circuit, ghz_star_truth

_ANGLES = (0.25, 0.45, 0.65)
#: qubit count -> (children, fresh_per_child); n = 1 + C·(1 + F)
_CURVE = {13: (3, 3), 16: (3, 4)}
_HEADLINE = 25  # (3, 7)
_EPS = 1e-5


def _workload(children: int, fresh: int):
    qc, specs = ghz_star_circuit(children, fresh, angles=_ANGLES)
    tree = partition_tree(qc, specs)
    data = exact_tree_data(tree)
    truth = ghz_star_truth(children, fresh, angles=_ANGLES)
    return data, truth


_DATA = {n: _workload(c, f) for n, (c, f) in _CURVE.items()}
_DATA[_HEADLINE] = _workload(3, 7)


def _dense_truth(n: int) -> np.ndarray:
    out = np.zeros(1 << n)
    for k, v in _DATA[n][1].items():
        out[k] = v
    return out


@pytest.mark.parametrize("n", sorted(_CURVE))
@pytest.mark.benchmark(group="dense-reconstruction")
def test_dense_reconstruction(benchmark, n):
    data, _ = _DATA[n]
    probs = record_memory(
        benchmark, reconstruct_tree_distribution, data, postprocess="raw"
    )
    benchmark(reconstruct_tree_distribution, data, postprocess="raw")
    assert np.abs(probs - _dense_truth(n)).max() <= 1e-9


@pytest.mark.parametrize("n", sorted(_CURVE))
@pytest.mark.benchmark(group="sparse-reconstruction")
def test_sparse_reconstruction(benchmark, n):
    data, truth = _DATA[n]
    run = lambda: reconstruct_tree_distribution(
        data, postprocess="raw", prune=threshold(_EPS)
    )
    sd = record_memory(benchmark, run)
    benchmark(run)
    # rigorous bound: with exact data the sampling term is identically 0
    assert sd.tv_against(truth) <= sd.prune_bound + 1e-12
    # the perturbed star keeps 2^{children+1} outcomes; pruning found them
    assert sd.nnz == len(truth)


@pytest.mark.parametrize("n", sorted(_CURVE))
@pytest.mark.benchmark(group="sparse-loose-threshold")
def test_sparse_loose_threshold_graceful(benchmark, n):
    """A loose threshold discards real mass but stays within its bound."""
    data, truth = _DATA[n]
    run = lambda: reconstruct_tree_distribution(
        data, postprocess="raw", prune=threshold(0.05)
    )
    sd = record_memory(benchmark, run)
    benchmark(run)
    assert sd.nnz < len(truth)  # genuinely pruned
    assert sd.prune_bound > 0.0
    assert sd.tv_against(truth) <= sd.prune_bound + 1e-12


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.benchmark(group="sparse-25q")
def test_sparse_25q(benchmark, dtype):
    """The 20+-qubit headline: dense would need a 268 MB vector."""
    data, truth = _DATA[_HEADLINE]
    dt = np.dtype(dtype)
    run = lambda: reconstruct_tree_distribution(
        data, postprocess="raw", prune=threshold(_EPS), dtype=dt
    )
    sd = record_memory(benchmark, run)
    benchmark(run)
    dense_bytes = (1 << _HEADLINE) * 8  # the vector alone, ex. intermediates
    tol = sd.prune_bound + (1e-12 if dtype == "float64" else 1e-5)
    assert sd.tv_against(truth) <= tol
    assert benchmark.extra_info["mem_peak_bytes"] < dense_bytes
    register_report(
        f"sparse 25q ({dtype}): nnz={sd.nnz}, "
        f"prune_bound={sd.prune_bound:.3e}, "
        f"tv={sd.tv_against(truth):.3e}, "
        f"peak={benchmark.extra_info['mem_peak_bytes'] / 1e6:.2f} MB "
        f"(dense vector alone: {dense_bytes / 1e6:.0f} MB)"
    )
