"""Thread-vs-process executor benchmarks on a GIL-bound workload (PR 10).

The workload is :class:`~repro.backends.trajectory.TrajectoryBackend` — a
Monte-Carlo trajectory simulator whose per-gate Python loop holds the GIL,
so a thread pool cannot scale it and ``mode="process"`` is the only lever:

* ``trajectory-modes`` — the same 3-fragment / 21-task tree through
  :func:`~repro.parallel.executor.run_tree_fragments_parallel` in
  ``serial``, ``thread`` and ``process`` mode (4 workers); every cell
  asserts bit-identical records against the serial reference;
* ``trajectory-speedup`` — the acceptance gate: with ≥ 4 usable cores the
  process pool must finish the trajectory tree at least 2× faster than the
  thread pool (skipped — not failed — on smaller machines, where the pool
  spawn overhead dominates and the ratio is meaningless);
* ``service-coalesced`` vs ``service-independent`` — two identical
  concurrent requests through :class:`~repro.parallel.service.CutRunService`
  (each shared fragment body executed once, pinned by the coalescing
  stats) against the same two requests run back-to-back without the
  service.

Baselines live in ``benchmarks/BENCH_process_executor.json``; refresh with
``python benchmarks/compare.py --write-baseline --suite process_executor``.
"""

import os
import time
from functools import partial

import numpy as np
import pytest

from repro.backends import fake_5q_device, trajectory_5q_device
from repro.core import cut_and_run_tree
from repro.cutting.tree import partition_tree
from repro.harness.scaling import tree_cut_circuit
from repro.parallel import CutRunService, run_tree_fragments_parallel

_SHOTS = 200
_SEED = 7
_TRAJECTORIES = 6
_WORKERS = 4
_CORES = len(os.sched_getaffinity(0))
_FACTORY = partial(trajectory_5q_device, _TRAJECTORIES)

_QC, _SPECS = tree_cut_circuit(
    [0, 0], 1, fresh_per_fragment=2, depth=2, seed=83
)
_TREE = partition_tree(_QC, _SPECS)


def _run(mode):
    return run_tree_fragments_parallel(
        _TREE,
        _FACTORY,
        shots=_SHOTS,
        seed=_SEED,
        max_workers=_WORKERS,
        mode=mode,
    )


_REFERENCE = _run("serial")


def _assert_identical(data):
    for i in range(_TREE.num_fragments):
        assert set(data.records[i]) == set(_REFERENCE.records[i])
        for k in data.records[i]:
            np.testing.assert_array_equal(
                data.records[i][k], _REFERENCE.records[i][k]
            )


@pytest.mark.benchmark(group="trajectory-modes")
def test_trajectory_serial(benchmark):
    data = benchmark.pedantic(lambda: _run("serial"), rounds=2, iterations=1)
    _assert_identical(data)


@pytest.mark.benchmark(group="trajectory-modes")
def test_trajectory_thread_pool(benchmark):
    data = benchmark.pedantic(lambda: _run("thread"), rounds=2, iterations=1)
    _assert_identical(data)


@pytest.mark.benchmark(group="trajectory-modes")
def test_trajectory_process_pool(benchmark):
    data = benchmark.pedantic(lambda: _run("process"), rounds=2, iterations=1)
    _assert_identical(data)


@pytest.mark.benchmark(group="trajectory-speedup")
def test_process_beats_thread_on_multicore(benchmark):
    """Acceptance gate: ≥ 2× over the thread pool on a ≥ 4-core machine.

    On fewer cores the process pool has nothing to parallelise against and
    its spawn overhead dominates, so the ratio is skipped, not asserted.
    """
    if _CORES < 4:
        pytest.skip(f"speedup gate needs >= 4 usable cores, have {_CORES}")
    t0 = time.perf_counter()
    thread_data = _run("thread")
    thread_seconds = time.perf_counter() - t0
    data = benchmark.pedantic(lambda: _run("process"), rounds=2, iterations=1)
    _assert_identical(data)
    _assert_identical(thread_data)
    process_seconds = benchmark.stats.stats.min
    speedup = thread_seconds / process_seconds
    assert speedup >= 2.0, (
        f"process pool only {speedup:.2f}x faster than threads "
        f"({process_seconds:.2f}s vs {thread_seconds:.2f}s on {_CORES} cores)"
    )


def _coalesced_pair():
    backend = fake_5q_device()
    kwargs = dict(specs=_SPECS, shots=_SHOTS, seed=_SEED)
    with CutRunService(backend, batch_window=0.01) as svc:
        a, b = svc.run_many([(_QC, kwargs), (_QC, kwargs)])
        stats = svc.stats()
    assert stats["coalesced"] == stats["fragment_jobs"] == _TREE.num_fragments
    np.testing.assert_array_equal(a.probabilities, b.probabilities)
    return a


def _independent_pair():
    backend = fake_5q_device()
    a = cut_and_run_tree(_QC, backend, _SPECS, shots=_SHOTS, seed=_SEED)
    b = cut_and_run_tree(_QC, backend, _SPECS, shots=_SHOTS, seed=_SEED)
    np.testing.assert_array_equal(a.probabilities, b.probabilities)
    return a


@pytest.mark.benchmark(group="service-coalesced")
def test_service_coalesces_identical_requests(benchmark):
    a = benchmark.pedantic(_coalesced_pair, rounds=3, iterations=1)
    np.testing.assert_array_equal(
        a.probabilities, _independent_pair().probabilities
    )


@pytest.mark.benchmark(group="service-independent")
def test_two_requests_without_the_service(benchmark):
    benchmark.pedantic(_independent_pair, rounds=3, iterations=1)
