"""Microbenchmarks of the classical reconstruction kernels.

Separates the two stages of Fig. 4's classical cost: building the fragment
tensors (Â, B̂) and the final GEMM contraction, across cut counts — useful
for profiling regressions in the hot path (HPC guide: measure, don't guess).

The ``kernel-tensors`` group measures the production (factorised) builders;
``kernel-tensors-reference`` measures the row-by-row reference builders the
fast path is validated against, so the speedup of the vectorisation is
visible in every run.  Baselines: see ``benchmarks/compare.py``
(``python benchmarks/compare.py --write-baseline`` refreshes
``benchmarks/BENCH_reconstruction.json``).
"""

import numpy as np
import pytest

from repro.cutting import bipartition
from repro.cutting.execution import exact_fragment_data
from repro.cutting.reconstruction import (
    build_downstream_tensor,
    build_downstream_tensor_reference,
    build_upstream_tensor,
    build_upstream_tensor_reference,
    reconstruct_distribution,
)
from repro.harness.scaling import multi_cut_golden_circuit

_CASES = {}
for K in (1, 2, 3):
    qc, spec = multi_cut_golden_circuit(K, extra_up=2, extra_down=2, depth=2, seed=900 + K)
    pair = bipartition(qc, spec)
    _CASES[K] = (pair, exact_fragment_data(pair))


@pytest.mark.benchmark(group="kernel-tensors")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_build_upstream_tensor(benchmark, K):
    _, data = _CASES[K]
    A, rows = benchmark(build_upstream_tensor, data)
    assert A.shape[0] == 4**K


@pytest.mark.benchmark(group="kernel-tensors")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_build_downstream_tensor(benchmark, K):
    _, data = _CASES[K]
    B, rows = benchmark(build_downstream_tensor, data)
    assert B.shape[0] == 4**K


@pytest.mark.benchmark(group="kernel-tensors-reference")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_build_upstream_tensor_reference(benchmark, K):
    _, data = _CASES[K]
    A, rows = benchmark(build_upstream_tensor_reference, data)
    assert A.shape[0] == 4**K


@pytest.mark.benchmark(group="kernel-tensors-reference")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_build_downstream_tensor_reference(benchmark, K):
    _, data = _CASES[K]
    B, rows = benchmark(build_downstream_tensor_reference, data)
    assert B.shape[0] == 4**K


@pytest.mark.benchmark(group="kernel-full")
@pytest.mark.parametrize("K", [1, 2, 3])
def test_full_reconstruction(benchmark, K):
    pair, data = _CASES[K]
    p = benchmark(reconstruct_distribution, data, postprocess="raw")
    assert np.isclose(p.sum(), 1.0, atol=1e-8)


@pytest.mark.benchmark(group="kernel-sampling")
def test_multinomial_sampling(benchmark):
    from repro.sim.sampler import sample_counts

    rng = np.random.default_rng(0)
    probs = rng.random(1 << 7)
    probs /= probs.sum()
    benchmark(sample_counts, probs, 10_000, 1)


@pytest.mark.benchmark(group="kernel-simulators")
def test_statevector_7q(benchmark):
    from repro.circuits import random_circuit
    from repro.sim import simulate_statevector

    qc = random_circuit(7, 10, seed=3)
    benchmark(simulate_statevector, qc)


@pytest.mark.benchmark(group="kernel-simulators")
def test_noisy_density_5q(benchmark):
    from repro.backends import fake_5q_device
    from repro.circuits import random_circuit

    dev = fake_5q_device()
    qc = random_circuit(5, 6, seed=4)
    benchmark(lambda: dev.run_one(qc, shots=100, seed=0))
