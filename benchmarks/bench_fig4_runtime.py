"""Reproduces paper Fig. 4 — algorithm runtime on the simulator.

Paper protocol: time "gathering fragment data and reconstructing them" with
and without the golden-cutting-point optimisation; 1000 trials × 1000 shots;
95 % CI.  Expected shape: the golden bars are lower (fewer variants to
simulate, fewer terms to contract).
"""

import pytest

from repro.backends import IdealBackend
from repro.core import cut_and_run, golden_ansatz
from repro.harness import run_fig4
from repro.harness.report import format_table

from conftest import paper_scale, register_report

TRIALS = 1000 if paper_scale() else 40
SHOTS = 1000

_spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=404)
_backend = IdealBackend()


def _standard():
    return cut_and_run(
        _spec.circuit, _backend, cuts=_spec.cut_spec, shots=SHOTS,
        golden="off", seed=1,
    )


def _golden():
    return cut_and_run(
        _spec.circuit, _backend, cuts=_spec.cut_spec, shots=SHOTS,
        golden="known", golden_map={0: "Y"}, seed=1,
    )


@pytest.mark.benchmark(group="fig4-gather+reconstruct")
def test_fig4_standard(benchmark):
    result = benchmark(_standard)
    assert result.costs.num_variants == 9


@pytest.mark.benchmark(group="fig4-gather+reconstruct")
def test_fig4_golden(benchmark):
    result = benchmark(_golden)
    assert result.costs.num_variants == 6


def test_fig4_trials_table(benchmark):
    r = benchmark.pedantic(
        run_fig4, kwargs=dict(trials=TRIALS, shots=SHOTS, seed=404),
        rounds=1, iterations=1,
    )
    register_report(
        format_table(
            r.rows(),
            columns=["series", "label", "n", "mean", "ci95_low", "ci95_high"],
            title=f"Fig. 4 — simulator runtime, standard vs golden "
            f"({TRIALS} trials x {SHOTS} shots; paper: golden visibly lower)",
        )
    )
    assert r.speedup > 1.0
