"""Benchmarks of the searched DAG contraction path (PR 9).

Measures the reconstruction contraction of a **branchy 5-fragment DAG**
(a diamond with a tail, 2 cuts per group — the joint-prep sink's flat
entering space is the product over its two entering groups) three ways:

* ``dag-contraction-fixed`` — the historical fixed leaves-to-root merge
  order (reverse topological), the baseline the tree engine used;
* ``dag-contraction-searched`` — the DP-optimal
  :class:`~repro.cutting.contraction.ContractionPlan` the reconstruction
  now searches automatically on DAG inputs (the committed perf claim:
  the searched path beats the fixed order on this shape);
* ``dag-pipeline`` — end-to-end ``reconstruct_tree_distribution`` with
  automatic plan search (tensor builds included), plus the plan search
  itself (``dag-plan-search``), which must stay negligible.

Baselines live in ``benchmarks/BENCH_dag_contraction.json``; refresh with
``python benchmarks/compare.py --write-baseline --suite dag_contraction``
and compare a working tree against them with
``python benchmarks/compare.py``.
"""

import pytest
from conftest import record_memory

from repro.cutting.contraction import (
    dp_plan,
    fixed_plan,
    network_spec_for_tree,
    search_plan,
)
from repro.cutting.execution import exact_tree_data
from repro.cutting.reconstruction import (
    _contract_network,
    build_tree_fragment_tensor,
    reconstruct_tree_distribution,
)
from repro.cutting.tree import partition_tree
from repro.harness.scaling import dag_cut_circuit

#: diamond + tail: 0 feeds 1 and 2, which jointly prepare 3, feeding 4
_EDGES = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]


def _tree():
    qc, specs = dag_cut_circuit(
        _EDGES, cuts_per_group=2, fresh_per_fragment=1, depth=2, seed=11
    )
    return partition_tree(qc, specs)


_TREE = _tree()
_DATA = exact_tree_data(_TREE)
_TENSORS = [
    build_tree_fragment_tensor(_DATA, i)[0]
    for i in range(_TREE.num_fragments)
]
_SPEC = network_spec_for_tree(_TREE)
_FIXED = fixed_plan(_SPEC)
_SEARCHED = dp_plan(_SPEC)


@pytest.mark.benchmark(group="dag-contraction-fixed")
def test_dag_contraction_fixed(benchmark):
    """Baseline: the fixed leaves-to-root order on the branchy DAG."""
    vec, order = record_memory(
        benchmark, _contract_network, _TENSORS, _TREE, _FIXED, None
    )
    benchmark(lambda: _contract_network(_TENSORS, _TREE, _FIXED, None))
    assert vec.size == 1 << len(order)


@pytest.mark.benchmark(group="dag-contraction-searched")
def test_dag_contraction_searched(benchmark):
    """The searched plan must beat the fixed order (the perf gate)."""
    assert _SEARCHED.cost * 5 <= _FIXED.cost
    vec, order = record_memory(
        benchmark, _contract_network, _TENSORS, _TREE, _SEARCHED, None
    )
    benchmark(lambda: _contract_network(_TENSORS, _TREE, _SEARCHED, None))
    assert vec.size == 1 << len(order)


@pytest.mark.benchmark(group="dag-plan-search")
def test_dag_plan_search(benchmark):
    """Cost of the plan search itself (spec build + auto planner)."""
    plan = benchmark(
        lambda: search_plan(network_spec_for_tree(_TREE), "auto")
    )
    assert plan.cost == _SEARCHED.cost


@pytest.mark.benchmark(group="dag-pipeline")
def test_dag_reconstruction_pipeline(benchmark):
    """End-to-end planned reconstruction (tensor builds included)."""
    p = record_memory(
        benchmark, reconstruct_tree_distribution, _DATA, postprocess="raw"
    )
    benchmark(
        lambda: reconstruct_tree_distribution(_DATA, postprocess="raw")
    )
    assert p.size == 1 << len(_TREE.output_order())
