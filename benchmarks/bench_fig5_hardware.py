"""Reproduces paper Fig. 5 — circuit-cutting runtime on (fake) IBM devices.

Paper numbers: standard 18.84 s vs golden 12.61 s per trial (50 trials ×
1000 shots), a 33 % reduction from executing 3.0·10⁵ instead of 4.5·10⁵
circuits.  Our device timing model reproduces the ratio exactly (9 → 6
jobs) and the absolute seconds to within a few percent.
"""

import pytest

from repro.backends import fake_device
from repro.core import cut_and_run, golden_ansatz
from repro.harness import run_fig5
from repro.harness.fig5_hardware import (
    PAPER_GOLDEN_SECONDS,
    PAPER_STANDARD_SECONDS,
)
from repro.harness.report import format_table

from conftest import paper_scale, register_report

TRIALS = 50 if paper_scale() else 10
SHOTS = 1000

_spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=505)


@pytest.mark.benchmark(group="fig5-device-pipeline")
def test_fig5_standard_pipeline(benchmark):
    def run():
        return cut_and_run(
            _spec.circuit, fake_device(5), cuts=_spec.cut_spec, shots=SHOTS,
            golden="off", seed=2,
        )

    result = benchmark(run)
    assert result.total_executions == 9 * SHOTS


@pytest.mark.benchmark(group="fig5-device-pipeline")
def test_fig5_golden_pipeline(benchmark):
    def run():
        return cut_and_run(
            _spec.circuit, fake_device(5), cuts=_spec.cut_spec, shots=SHOTS,
            golden="known", golden_map={0: "Y"}, seed=2,
        )

    result = benchmark(run)
    assert result.total_executions == 6 * SHOTS


def test_fig5_modeled_walltime_table(benchmark):
    r = benchmark.pedantic(
        run_fig5, kwargs=dict(trials=TRIALS, shots=SHOTS, seed=505),
        rounds=1, iterations=1,
    )
    register_report(
        format_table(
            r.rows(),
            title=f"Fig. 5 — modeled device wall time per trial "
            f"({TRIALS} trials x {SHOTS} shots; paper: "
            f"{PAPER_STANDARD_SECONDS} s vs {PAPER_GOLDEN_SECONDS} s)",
        )
    )
    # the paper's headline: ~1.49x; our model gives exactly 1.5
    assert r.speedup == pytest.approx(1.5, rel=0.05)
    # absolute seconds in the paper's ballpark
    assert abs(r.standard.mean - PAPER_STANDARD_SECONDS) < 4.0
    assert abs(r.golden.mean - PAPER_GOLDEN_SECONDS) < 3.0
