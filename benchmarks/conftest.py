"""Benchmark-suite plumbing.

Each benchmark registers the paper-style result tables it produced via
:func:`register_report`; a ``pytest_terminal_summary`` hook prints them all
after the run, so ``pytest benchmarks/ --benchmark-only | tee ...`` captures
the reproduced figures alongside pytest-benchmark's timing table.

Scale: defaults are CI-sized.  Set ``REPRO_BENCH_PAPER_SCALE=1`` to run the
paper's full protocol (10 trials × 10k shots for Fig. 3, 1000 × 1000 for
Fig. 4, 50 × 1000 for Fig. 5).
"""

from __future__ import annotations

import os
import tracemalloc

_REPORTS: list[str] = []


def register_report(text: str) -> None:
    _REPORTS.append(text)


def record_memory(benchmark, fn, *args, **kwargs):
    """Attach a tracemalloc memory profile of ``fn`` to a benchmark.

    Runs ``fn`` once (outside the timed loop) under :mod:`tracemalloc`
    and stores ``mem_peak_bytes`` (allocation high-water mark) and
    ``result_nbytes`` (the returned object's ``nbytes``, when it has one
    — dense vector or sparse pair alike) in ``benchmark.extra_info``, so
    the numbers land in the ``BENCH_*.json`` baselines and
    ``compare.py`` can gate memory the way it gates time.  Returns the
    result for further assertions.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = fn(*args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    benchmark.extra_info["mem_peak_bytes"] = int(peak)
    nbytes = getattr(result, "nbytes", None)
    if nbytes is not None:
        benchmark.extra_info["result_nbytes"] = int(nbytes)
    return result


def paper_scale() -> bool:
    return os.environ.get("REPRO_BENCH_PAPER_SCALE", "") == "1"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced paper results")
    for block in _REPORTS:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
