"""Benchmark-suite plumbing.

Each benchmark registers the paper-style result tables it produced via
:func:`register_report`; a ``pytest_terminal_summary`` hook prints them all
after the run, so ``pytest benchmarks/ --benchmark-only | tee ...`` captures
the reproduced figures alongside pytest-benchmark's timing table.

Scale: defaults are CI-sized.  Set ``REPRO_BENCH_PAPER_SCALE=1`` to run the
paper's full protocol (10 trials × 10k shots for Fig. 3, 1000 × 1000 for
Fig. 4, 50 × 1000 for Fig. 5).
"""

from __future__ import annotations

import os

_REPORTS: list[str] = []


def register_report(text: str) -> None:
    _REPORTS.append(text)


def paper_scale() -> bool:
    return os.environ.get("REPRO_BENCH_PAPER_SCALE", "") == "1"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced paper results")
    for block in _REPORTS:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
