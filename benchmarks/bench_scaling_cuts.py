"""Ablation: the §II-B scaling claims O(4^{K_r} 3^{K_g}) / O(6^{K_r} 4^{K_g}).

Not a figure in the paper — the derivation the paper states without
measurement.  We build K = 1..3 cut bipartitions whose cuts are all golden,
neglect 0..K of them, and measure reconstruction time and variant counts.
"""

import pytest

from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.cutting import bipartition
from repro.cutting.execution import exact_fragment_data
from repro.cutting.reconstruction import reconstruct_distribution
from repro.harness.report import format_table
from repro.harness.scaling import multi_cut_golden_circuit, run_scaling

from conftest import register_report

_qc3, _spec3 = multi_cut_golden_circuit(3, depth=2, seed=780)
_pair3 = bipartition(_qc3, _spec3)


@pytest.mark.benchmark(group="scaling-K3-reconstruction")
def test_reconstruct_k3_standard(benchmark):
    data = exact_fragment_data(_pair3)
    out = benchmark(reconstruct_distribution, data, postprocess="raw")
    assert out.size == 1 << _qc3.num_qubits


@pytest.mark.benchmark(group="scaling-K3-reconstruction")
def test_reconstruct_k3_all_golden(benchmark):
    golden = {k: "Y" for k in range(3)}
    data = exact_fragment_data(
        _pair3,
        settings=reduced_setting_tuples(3, golden),
        inits=reduced_init_tuples(3, golden),
    )
    bases = reduced_bases(3, golden)
    out = benchmark(reconstruct_distribution, data, bases=bases, postprocess="raw")
    assert out.size == 1 << _qc3.num_qubits


def test_scaling_grid_table(benchmark):
    rows = benchmark.pedantic(
        run_scaling, kwargs=dict(max_cuts=3, depth=2, seed=777, repeats=3),
        rounds=1, iterations=1,
    )
    register_report(
        format_table(
            rows,
            title="Scaling ablation — terms 4^{K_r}·3^{K_g}, variants "
            "3^{K_r}2^{K_g}+6^{K_r}4^{K_g}, measured reconstruction time",
        )
    )
    for r in rows:
        K, kg = r["K"], r["K_golden"]
        assert r["rows(4^Kr*3^Kg)"] == 4 ** (K - kg) * 3**kg
    k3 = {r["K_golden"]: r["reconstruct_ms"] for r in rows if r["K"] == 3}
    assert k3[3] < k3[0]
