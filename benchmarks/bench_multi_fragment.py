"""Benchmarks of multi-fragment chain execution and reconstruction.

Measures the cost of producing and reconstructing a genuine **3-fragment
chain** result set (two cut groups, K = 2 cuts each — the interior fragment
alone has ``6² · 3² = 324`` combined variants) three ways:

* ``chain-noisy-cached`` — the production fast path:
  :meth:`~repro.backends.fake_hardware.FakeHardwareBackend.run_chain_variants`
  served by a fresh :class:`~repro.cutting.cache.ChainCachePool` (one
  transpile per fragment body, ``4^{K_prev}`` body evolutions + ``3^{K}``
  batched rotation passes per fragment);
* ``chain-noisy-reference`` — the pre-cache semantics: every combined
  ``(inits, setting)`` variant circuit transpiled and density-evolved from
  scratch;
* ``chain-noisy-warm`` — marginal cost of re-serving every variant from a
  warmed pool (the repeat-consumer path inside ``cut_and_run_chain``).

Plus the classical side:

* ``chain-reconstruction`` — the generalised einsum contraction over the
  three per-fragment tensors vs the brute-force row-loop over the full
  basis product across both cut groups (``16 · 16`` rows).

Baselines live in ``benchmarks/BENCH_multi_fragment.json``; refresh with
``python benchmarks/compare.py --write-baseline --suite multi_fragment``
and compare a working tree against them with
``python benchmarks/compare.py``.
"""

import pytest

from repro.backends.base import Backend
from repro.backends.fake_hardware import FakeHardwareBackend
from repro.cutting.chain import partition_chain
from repro.cutting.execution import exact_chain_data, run_chain_fragments
from repro.cutting.reconstruction import (
    reconstruct_chain_distribution,
    reconstruct_chain_distribution_reference,
)
from repro.cutting.variants import chain_variant_tuples
from repro.harness.scaling import chain_cut_circuit
from repro.noise.kraus import (
    amplitude_damping,
    depolarizing,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.transpile.coupling import CouplingMap

_SHOTS = 1000
_CUTS_PER_GROUP = 2


def _noise(num_qubits: int) -> NoiseModel:
    nm = NoiseModel()
    nm.add_gate_noise(["sx", "x", "rz"], depolarizing(2e-3))
    nm.add_gate_noise(["sx", "x"], amplitude_damping(1.5e-3))
    nm.add_gate_noise(["cx"], two_qubit_depolarizing(8e-3))
    for q in range(num_qubits):
        nm.add_readout_error(q, ReadoutError(p01=0.015, p10=0.03))
    return nm


def _device() -> FakeHardwareBackend:
    return FakeHardwareBackend(
        CouplingMap.linear(5), _noise(5), name="bench_chain_5q"
    )


def _chain():
    qc, specs = chain_cut_circuit(
        3, _CUTS_PER_GROUP, fresh_per_fragment=2, depth=2, seed=910
    )
    return partition_chain(qc, specs)


_CHAIN = _chain()
_VARIANTS = [
    chain_variant_tuples(_CHAIN, i) for i in range(_CHAIN.num_fragments)
]
_NUM_VARIANTS = sum(len(v) for v in _VARIANTS)


def _run_cached():
    """Fast path: run_chain_fragments + fresh ChainCachePool (cold)."""
    dev = _device()
    pool = dev.make_chain_cache_pool(_CHAIN)
    return run_chain_fragments(_CHAIN, dev, shots=_SHOTS, seed=0, pool=pool)


def _run_reference():
    """Pre-cache semantics: every combined variant through ``_execute``."""
    dev = _device()
    out = []
    for i, combos in enumerate(_VARIANTS):
        out.extend(
            Backend.run_chain_variants(
                dev, _CHAIN, i, combos, shots=_SHOTS, seed=0
            )
        )
    return out


@pytest.mark.benchmark(group="chain-noisy-cached")
def test_chain_noisy_cached(benchmark):
    data = benchmark(_run_cached)
    assert data.num_variants == _NUM_VARIANTS


@pytest.mark.benchmark(group="chain-noisy-reference")
def test_chain_noisy_reference(benchmark):
    results = benchmark.pedantic(
        _run_reference, rounds=2, iterations=1, warmup_rounds=1
    )
    assert len(results) == _NUM_VARIANTS


@pytest.mark.benchmark(group="chain-noisy-warm")
def test_chain_noisy_warm_pool(benchmark):
    """Marginal cost of re-serving every variant from a warmed pool."""
    dev = _device()
    pool = dev.make_chain_cache_pool(_CHAIN).warm(_VARIANTS)
    data = benchmark(
        lambda: run_chain_fragments(
            _CHAIN, dev, shots=_SHOTS, seed=0, pool=pool
        )
    )
    assert data.num_variants == _NUM_VARIANTS


_EXACT_DATA = exact_chain_data(_CHAIN)


@pytest.mark.benchmark(group="chain-reconstruction")
def test_chain_reconstruction_einsum(benchmark):
    p = benchmark(
        lambda: reconstruct_chain_distribution(_EXACT_DATA, postprocess="raw")
    )
    assert p.size == 1 << len(_CHAIN.output_order())


@pytest.mark.benchmark(group="chain-reconstruction")
def test_chain_reconstruction_reference(benchmark):
    p = benchmark(
        lambda: reconstruct_chain_distribution_reference(_EXACT_DATA)
    )
    assert p.size == 1 << len(_CHAIN.output_order())
