"""Transverse-field Ising energy of a wide ansatz, via circuit cutting.

A VQE-flavoured workload: estimate ``⟨H⟩`` for

    H = J Σ Z_i Z_{i+1}  −  h Σ X_i

on an 8-qubit hardware-efficient ansatz that does not fit a 5-qubit device.
The Hamiltonian mixes diagonal (ZZ) and off-diagonal (X) terms, so this
exercises the general Eq. 14 machinery: each qubit-wise-commuting group of
terms shares one set of fragment executions, with basis-change rotations
appended to the fragments' output wires.

Run:  python examples/ising_energy.py
"""

from repro import IdealBackend, bipartition, find_cuts
from repro.circuits import hardware_efficient_ansatz
from repro.cutting import cut_pauli_sum_expectation
from repro.observables import PauliSumObservable

N = 8
DEVICE_LIMIT = 5
J, H_FIELD = 1.0, 0.6
SHOTS = 40_000
SEED = 21


def ising_hamiltonian(n: int, j: float, h: float) -> PauliSumObservable:
    terms = []
    for i in range(n - 1):
        lbl = ["I"] * n
        lbl[i] = lbl[i + 1] = "Z"
        terms.append((j, "".join(lbl)))
    for i in range(n):
        lbl = ["I"] * n
        lbl[i] = "X"
        terms.append((-h, "".join(lbl)))
    return PauliSumObservable.from_list(terms)


def main() -> None:
    qc = hardware_efficient_ansatz(N, reps=1, seed=SEED)
    ham = ising_hamiltonian(N, J, H_FIELD)
    print(f"workload: {qc.name} ({N} qubits, {len(qc)} gates); "
          f"H has {ham.num_terms} terms in "
          f"{len(ham.measurement_groups())} measurement groups")

    exact = ham.expectation_exact(qc)

    cuts = find_cuts(qc, max_fragment_qubits=DEVICE_LIMIT, max_cuts=2)
    pair = bipartition(qc, cuts)
    print(f"cut: {cuts.num_cuts} wire(s) {cuts.wires}; {pair.describe()}")

    energy, info = cut_pauli_sum_expectation(
        qc, cuts, IdealBackend(), ham, shots=SHOTS, seed=SEED
    )
    print(f"\n⟨H⟩ exact        = {exact:+.4f}")
    print(f"⟨H⟩ from cutting = {energy:+.4f}")
    print(f"fragment executions: {info['total_executions']} "
          f"({info['num_groups']} groups x variants x shots)")
    assert abs(energy - exact) < 0.15
    print("\nOK: mixed diagonal/off-diagonal Hamiltonian evaluated on "
          f"{DEVICE_LIMIT}-qubit fragments.")


if __name__ == "__main__":
    main()
