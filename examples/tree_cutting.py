"""Fragment-tree cutting: branched topologies beyond chains (PR 5).

Chains cover circuits whose cut wires flow strictly left to right, but the
branched workloads that dominate NISQ practice — GHZ-star state
distribution, DQVA/QAOA-style ansätze with a shared mixing core — induce
fragment *trees*: one fragment feeds several downstream neighbourhoods.
This example

1. builds a **GHZ-star**: a central core distributing entanglement into
   three arms, cuts every arm, and reconstructs the uncut distribution
   exactly through the tree-order (leaves-to-root) contraction;
2. shows the chain entry point pointing branched specs at
   :func:`~repro.cutting.tree.partition_tree` instead of dead-ending;
3. runs the golden machinery on a planted tree: the analytic root-to-leaves
   sweep finds the planted X/Y-golden groups, and ``golden="detect"``
   buys the same reduced pools from a finite pilot — the paper's
   ``4^{K_r} 3^{K_g}`` neglect applied per cut group of a *tree*.

Run:  python examples/tree_cutting.py
"""

import numpy as np

from repro import IdealBackend, partition_tree, simulate_statevector
from repro.circuits.circuit import Circuit
from repro.core.pipeline import cut_and_run_tree
from repro.cutting.cut import CutPoint, CutSpec
from repro.cutting.execution import exact_tree_data
from repro.cutting.reconstruction import reconstruct_tree_distribution
from repro.exceptions import CutError
from repro.harness.scaling import golden_tree_circuit


def ghz_star() -> tuple[Circuit, list[CutSpec]]:
    """A 3-armed GHZ-star: core GHZ on 4 qubits, one 2-qubit arm per spoke.

    Wires 1, 2, 3 each carry the core's entanglement into a private arm
    (fresh qubits 4–6), so the three arm specs branch off one root — a
    fragment tree no chain can express.
    """
    qc = Circuit(7, name="ghz_star")
    qc.h(0)
    for spoke in (1, 2, 3):
        qc.cx(0, spoke)
    boundaries = {
        w: max(i for i, inst in enumerate(qc) if w in inst.qubits)
        for w in (1, 2, 3)
    }
    for spoke, fresh in ((1, 4), (2, 5), (3, 6)):
        qc.cx(spoke, fresh)
        qc.ry(0.4 * spoke, fresh)
        qc.rz(0.2 * spoke, spoke)
    specs = [CutSpec((CutPoint(w, boundaries[w]),)) for w in (1, 2, 3)]
    return qc, specs


def main() -> None:
    qc, specs = ghz_star()
    print("cutting a 7-qubit GHZ-star into a fragment tree...")

    # chains reject the branched specs, pointing at the tree engine
    from repro.cutting.chain import partition_chain

    try:
        partition_chain(qc, specs)
    except CutError as err:
        print(f"  partition_chain: {err}")
    tree = partition_tree(qc, specs)
    print(f"  {tree.describe()}")
    root = tree.fragments[0]
    print(
        f"  root measures {root.num_meas} cut wires across "
        f"{len(root.meas_groups)} child groups"
    )

    data = exact_tree_data(tree)
    p = reconstruct_tree_distribution(data, postprocess="raw")
    truth = simulate_statevector(qc).probabilities()
    err = float(np.abs(p - truth).max())
    print(f"  exact tree reconstruction: max |error| = {err:.2e}")
    assert err < 1e-9

    print("\nplanted-golden tree: analytic sweep and pilot detection")
    qc2, specs2, planted = golden_tree_circuit(
        [0, 0, 1, 1], planted_groups=(0, 2, 3), fresh_per_fragment=3, seed=1
    )
    backend = IdealBackend()
    known = cut_and_run_tree(
        qc2, backend, specs2, shots=400, golden="known",
        golden_maps=planted, exploit_all=True, seed=0,
    )
    analytic = cut_and_run_tree(
        qc2, backend, specs2, shots=400, golden="analytic",
        exploit_all=True, seed=0,
    )
    assert analytic.golden_used == known.golden_used
    print(f"  analytic sweep found the planted maps: {analytic.golden_used}")

    off = cut_and_run_tree(qc2, backend, specs2, shots=400, seed=0)
    det = cut_and_run_tree(
        qc2, backend, specs2, shots=400, golden="detect",
        pilot_shots=2000, exploit_all=True, seed=0,
    )
    print(
        f"  executions  off: {off.total_executions:>7}   "
        f"known: {known.total_executions:>7}   "
        f"detect: {det.total_executions:>7} "
        f"(+{det.pilot_executions} pilot)"
    )
    assert known.total_executions < off.total_executions
    truth2 = simulate_statevector(qc2).probabilities()
    for label, res in (("known", known), ("detect", det)):
        tv = 0.5 * float(np.abs(res.probabilities - truth2).sum())
        print(f"  {label:>6}: TV error {tv:.4f}")
        assert tv < 0.2

    print("\ntree cutting OK — branched fragment topologies reconstruct "
          "exactly and golden neglect applies per cut group.")


if __name__ == "__main__":
    main()
