"""The paper's hardware experiment in miniature (Figs. 3 and 5).

A 5-qubit golden-ansatz circuit is executed on a fake IBM-style 5-qubit
device (noise model + topology + timing model) three ways:

1. uncut, directly on the device,
2. cut with the standard 4-basis reconstruction,
3. cut with the golden point exploited (Y basis neglected).

The script reports the weighted distance to the noiseless ground truth
(paper Eq. 17) and the modelled device wall time — showing the paper's two
findings: accuracy is preserved, and the golden run needs ~2/3 of the time.

Run:  python examples/golden_on_hardware.py
"""

from repro import (
    IdealBackend,
    cut_and_run,
    fake_5q_device,
    golden_ansatz,
    weighted_distance,
)

SHOTS = 10_000
SEED = 2023


def main() -> None:
    spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=SEED)
    qc = spec.circuit
    # the paper's ground truth is itself a 10k-shot noiseless sample; an
    # exact reference would put vanishing-probability bins into Eq. 17's
    # support and the metric would diverge on noise mass there
    truth = IdealBackend().run_one(qc, shots=SHOTS, seed=SEED + 999).probabilities()
    print(f"workload: {qc.name}, {qc.num_qubits} qubits, {len(qc)} gates, "
          f"golden basis {spec.golden_basis} at wire {spec.cut_wire}")

    # 1. uncut on hardware
    device = fake_5q_device()
    uncut = device.run_one(qc, shots=SHOTS, seed=SEED)
    d_uncut = weighted_distance(uncut.probabilities(), truth)
    t_uncut = device.clock.now

    # 2. standard cut
    device_std = fake_5q_device()
    std = cut_and_run(
        qc, device_std, cuts=spec.cut_spec, shots=SHOTS, golden="off", seed=SEED
    )
    d_std = weighted_distance(std.probabilities, truth)

    # 3. golden cut
    device_gld = fake_5q_device()
    gld = cut_and_run(
        qc, device_gld, cuts=spec.cut_spec, shots=SHOTS,
        golden="known", golden_map={0: spec.golden_basis}, seed=SEED,
    )
    d_gld = weighted_distance(gld.probabilities, truth)

    print()
    print(f"{'configuration':28s}{'d_w vs truth':>14s}{'device s':>10s}{'executions':>12s}")
    print(f"{'uncut on device':28s}{d_uncut:>14.4f}{t_uncut:>10.2f}{SHOTS:>12d}")
    print(f"{'standard cut (9 variants)':28s}{d_std:>14.4f}{std.device_seconds:>10.2f}"
          f"{std.total_executions:>12d}")
    print(f"{'golden cut (6 variants)':28s}{d_gld:>14.4f}{gld.device_seconds:>10.2f}"
          f"{gld.total_executions:>12d}")
    print()
    ratio = std.device_seconds / gld.device_seconds
    print(f"device-time ratio standard/golden = {ratio:.2f} "
          f"(paper: 18.84 s / 12.61 s = 1.49)")


if __name__ == "__main__":
    main()
