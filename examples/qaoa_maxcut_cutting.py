"""Cutting a QAOA MaxCut circuit — combinatorial optimisation workload.

The paper's introduction motivates circuit cutting with exactly this class
of application (refs [9], [20]: QAOA / quantum divide-and-conquer).  Here a
6-node ring MaxCut QAOA circuit that does not fit a 4-qubit device is cut,
executed fragment-by-fragment, and the cost function ``⟨C⟩ = Σ (1−ZZ)/2``
is evaluated from the reconstructed distribution.

QAOA's RX mixer makes the upstream state complex, so generically *no* basis
is golden — the online detector verifies this and keeps the full protocol
(safety), while the variance model predicts the shot noise of the estimate.

Run:  python examples/qaoa_maxcut_cutting.py
"""

import networkx as nx
import numpy as np

from repro import IdealBackend, cut_and_run
from repro.circuits import qaoa_maxcut_circuit
from repro.cutting.variance import predicted_stddev_tv
from repro.observables import maxcut_hamiltonian
from repro.sim import simulate_statevector

SHOTS = 30_000
SEED = 11


def main() -> None:
    graph = nx.cycle_graph(6)
    gammas, betas = [0.65], [0.45]  # decent p=1 angles for the ring
    qc = qaoa_maxcut_circuit(graph, gammas, betas)
    cost = maxcut_hamiltonian(graph)
    print(f"workload: 6-node ring MaxCut QAOA (p=1), {len(qc)} gates")

    exact_energy = cost.expectation_exact(qc)
    truth = simulate_statevector(qc).probabilities()

    # spec-free mode: cut_and_run searches for the cuts itself, so all we
    # supply is the device budget
    run = cut_and_run(
        qc, IdealBackend(), cuts=None, max_fragment_qubits=4, shots=SHOTS,
        golden="detect", pilot_shots=5_000, seed=SEED,
    )
    pair = run.pair
    print(f"auto cut search: {pair.num_cuts} cut(s); {pair.describe()}")
    print("\ndetector verdicts (QAOA mixers are complex -> expect no golden):")
    for d in run.detection:
        flag = "GOLDEN" if d.is_golden else "keep"
        print(f"  cut {d.cut} basis {d.basis}: {flag:6s} max|z|={d.max_z:.1f}")

    energy_cut = run.expectation(cost.diagonal())
    sigma = predicted_stddev_tv(run.data)
    print(f"\n⟨C⟩ exact        = {exact_energy:.4f}")
    print(f"⟨C⟩ from cutting = {energy_cut:.4f}")
    print(f"predicted shot-noise scale (TV proxy) = {sigma:.4f}")
    best = int(np.argmax(cost.diagonal()))
    print(f"best cut value on this graph: {cost.diagonal().max():.0f} "
          f"(e.g. bitstring index {best})")

    assert abs(energy_cut - exact_energy) < 0.1
    print("\nOK: QAOA cost evaluated on fragments matches the uncut circuit.")


if __name__ == "__main__":
    main()
