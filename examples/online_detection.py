"""Online golden-point detection (the paper's §IV future-work direction).

The paper assumes the golden cutting point is known a priori and asks
whether it could be detected "online during the execution of the circuit
cutting procedure through sequential empirical measurements".  This example
runs that pipeline:

1. spend a pilot budget measuring the upstream fragment in all bases,
2. z-test every (cut, basis) candidate with a Bonferroni-corrected
   threshold (``repro.core.detection``),
3. drop the bases that pass, and execute the reduced variant set.

Two workloads are shown: a circuit *with* a built-in golden point (the
detector finds Y and saves a third of the executions) and a generic circuit
*without* one (the detector correctly keeps all bases — no accuracy loss).

Run:  python examples/online_detection.py
"""

from repro import (
    IdealBackend,
    cut_and_run,
    golden_ansatz,
    simulate_statevector,
    three_qubit_example,
    total_variation,
)

SHOTS = 20_000
PILOT = 4_000


def report(title, run, truth):
    tv = total_variation(run.probabilities, truth)
    print(f"\n== {title}")
    print(f"   detector verdicts:")
    for d in run.detection:
        flag = "GOLDEN " if d.is_golden else "keep   "
        print(
            f"     cut {d.cut} basis {d.basis}: {flag} max|z|={d.max_z:7.2f} "
            f"threshold={d.threshold:.2f}  p={d.p_value:.3g}"
        )
    print(f"   bases neglected: {run.golden_used or 'none'}")
    print(f"   variants executed: {run.costs.num_variants} "
          f"({run.total_executions} shots) + pilot")
    print(f"   TV error vs exact: {tv:.4f}")
    return tv


def main() -> None:
    backend = IdealBackend()

    spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=10)
    truth = simulate_statevector(spec.circuit).probabilities()
    run = cut_and_run(
        spec.circuit, backend, cuts=spec.cut_spec, shots=SHOTS,
        golden="detect", pilot_shots=PILOT, seed=10,
    )
    tv = report("golden-ansatz workload (Y is negligible)", run, truth)
    assert run.golden_used == {0: "Y"} and tv < 0.05

    spec2 = three_qubit_example(seed=42, golden=False)
    truth2 = simulate_statevector(spec2.circuit).probabilities()
    run2 = cut_and_run(
        spec2.circuit, backend, cuts=spec2.cut_spec, shots=SHOTS,
        golden="detect", pilot_shots=PILOT, seed=42,
    )
    tv2 = report("generic workload (nothing to neglect)", run2, truth2)
    assert tv2 < 0.05

    print("\nOK: detection exploits golden points when present and stays "
          "safe when absent.")


if __name__ == "__main__":
    main()
