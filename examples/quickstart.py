"""Quickstart: cut the paper's three-qubit example and reconstruct it.

Reproduces the walkthrough of paper §II-A (Fig. 1): a state
``U23 U12 |000⟩`` is cut on the middle wire, the two fragments are executed
independently, and the full output distribution is reassembled — first with
the standard 4-basis protocol, then exploiting the golden cutting point.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    IdealBackend,
    cut_and_run,
    draw,
    find_golden_bases_analytic,
    simulate_statevector,
    three_qubit_example,
    total_variation,
    bipartition,
)

SHOTS = 20_000
SEED = 7


def main() -> None:
    spec = three_qubit_example(seed=SEED, golden=True)
    qc = spec.circuit
    print("Three-qubit example (paper Fig. 1); cut on wire 1 after "
          f"instruction {spec.cut_spec.cuts[0].gate_index}:")
    print(draw(qc))
    print()

    truth = simulate_statevector(qc).probabilities()
    pair = bipartition(qc, spec.cut_spec)
    print(pair.describe())

    golden = find_golden_bases_analytic(pair)
    print(f"analytically golden bases per cut: {golden}")
    print()

    backend = IdealBackend()
    standard = cut_and_run(
        qc, backend, cuts=spec.cut_spec, shots=SHOTS, golden="off", seed=SEED
    )
    golden_run = cut_and_run(
        qc, backend, cuts=spec.cut_spec, shots=SHOTS, golden="analytic", seed=SEED
    )

    print(f"{'':24s}{'variants':>9s}{'executions':>12s}{'TV error':>10s}")
    for name, run in (("standard (4 bases)", standard), ("golden (Y neglected)", golden_run)):
        tv = total_variation(run.probabilities, truth)
        print(
            f"{name:24s}{run.costs.num_variants:>9d}"
            f"{run.total_executions:>12d}{tv:>10.4f}"
        )

    print()
    print("reconstructed vs exact distribution (golden run):")
    for b in range(8):
        bar = "#" * int(40 * golden_run.probabilities[b])
        print(f"  |{b:03b}⟩  exact {truth[b]:.3f}  cut {golden_run.probabilities[b]:.3f}  {bar}")

    assert total_variation(golden_run.probabilities, truth) < 0.05
    print("\nOK: golden reconstruction matches the uncut circuit.")


if __name__ == "__main__":
    main()
