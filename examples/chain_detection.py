"""Online golden detection on a fragment chain (paper §IV, generalised).

The paper leaves online detection of golden cutting points as future work
and studies only bipartitions.  This example closes both gaps at once on a
**3-fragment chain** (two cut groups) with golden bases planted in each
group:

* ``golden="analytic"`` sweeps the chain left to right, testing
  Definition 1 per cut group — interior fragments are maximised over the
  preparation contexts entering from the previous group, *conditioned on
  that group's own neglect* (that conditioning is what makes jointly
  golden chains detectable at all);
* ``golden="detect"`` does the same from finite-shot pilot measurements
  with a Bonferroni-corrected hypothesis test per (cut, basis) candidate,
  then spends the production budget on the reduced variant pools.

The table compares all four modes at their natural budgets: detection must
recover the known-a-priori pools and pay for its pilot with the savings.

Run:  python examples/chain_detection.py
"""

import numpy as np

from repro import IdealBackend, partition_chain, simulate_statevector
from repro.core.golden import find_chain_golden_bases_analytic
from repro.core.pipeline import cut_and_run_chain
from repro.harness.report import format_table
from repro.harness.scaling import golden_chain_circuit
from repro.metrics import total_variation

SHOTS = 4000
PILOT = 2000


def main() -> None:
    qc, specs, planted = golden_chain_circuit(
        3, planted_groups=(0, 1), fresh_per_fragment=2, depth=2, seed=0
    )
    chain = partition_chain(qc, specs)
    truth = simulate_statevector(qc).probabilities()
    print(f"{chain.describe()}  over {qc.num_qubits} qubits")
    print(f"planted golden maps per group: {planted}")

    found, selected = find_chain_golden_bases_analytic(chain)
    print(f"analytic sweep found: {found}")
    assert selected == [{0: ("X", "Y")}, {0: ("X", "Y")}, None][: len(selected)]

    backend = IdealBackend()
    runs = {
        "off (CutQC baseline)": cut_and_run_chain(
            qc, backend, specs, shots=SHOTS, seed=11
        ),
        "known a priori (paper)": cut_and_run_chain(
            qc, backend, specs, shots=SHOTS, golden="known",
            golden_maps=planted, seed=11,
        ),
        "analytic finder": cut_and_run_chain(
            qc, backend, specs, shots=SHOTS, golden="analytic",
            exploit_all=True, seed=11,
        ),
        "detect (pilot + test)": cut_and_run_chain(
            qc, backend, specs, shots=SHOTS, golden="detect",
            pilot_shots=PILOT, exploit_all=True, seed=11,
        ),
    }

    rows = []
    for label, run in runs.items():
        rows.append(
            {
                "strategy": label,
                "variants/fragment": "×".join(
                    str(c) for c in run.costs["variants_per_fragment"]
                ),
                "pilot": run.pilot_executions,
                "main": run.total_executions,
                "total": run.pilot_executions + run.total_executions,
                "TV error": round(total_variation(run.probabilities, truth), 4),
            }
        )
    print()
    print(format_table(rows, title="chain golden modes at equal per-variant shots"))

    known, det = runs["known a priori (paper)"], runs["detect (pilot + test)"]
    assert (
        det.costs["variants_per_fragment"] == known.costs["variants_per_fragment"]
    ), "detection must recover the known-a-priori variant pools"
    assert det.golden_used == known.golden_used or all(
        det.golden_used[g] for g in range(chain.num_groups) if planted[g]
    )
    off = runs["off (CutQC baseline)"]
    saved = off.total_executions - det.total_executions
    print(
        f"\ndetection paid {det.pilot_executions} pilot shots to save "
        f"{saved} production shots "
        f"({off.total_executions} -> {det.total_executions})"
    )
    assert saved > det.pilot_executions, "detection must pay for itself here"
    for run in runs.values():
        assert total_variation(run.probabilities, truth) < 0.1
    # the planted neglect loses no accuracy relative to the full product
    assert np.isclose(det.probabilities.sum(), 1.0, atol=1e-9)


if __name__ == "__main__":
    main()
