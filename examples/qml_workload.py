"""Golden cutting points in a QML-style variational workload (paper §IV).

The paper's conclusion singles out quantum machine learning circuits as
natural golden-cutting-point candidates because their ansätze are flexible
and lightly constrained.  The standard *real-amplitudes* ansatz (RY + CX)
is exactly such a circuit — and because all its gates are real, **every**
wire cut of it is Y-golden for computational-basis observables.

This example takes a 6-qubit real-amplitudes classifier ansatz that does
not fit a 4-qubit device, finds a cut automatically, confirms the golden
basis analytically, and evaluates the model's output distribution and a
parity "decision function" on 4-qubit fragments only.

Run:  python examples/qml_workload.py
"""

import numpy as np

from repro import (
    DiagonalObservable,
    IdealBackend,
    bipartition,
    cut_and_run,
    find_cuts,
    find_golden_bases_analytic,
    real_amplitudes_ansatz,
    simulate_statevector,
    total_variation,
)

N_QUBITS = 6
DEVICE_LIMIT = 4
SHOTS = 30_000
SEED = 123


def main() -> None:
    # reps=1 keeps the entangling ladder crossing the bipartition once, so
    # a single wire cut suffices.  (With more reps the boundary is crossed
    # repeatedly and a single-cut-per-wire bipartition needs several cuts;
    # Y then stays golden only for rows with an odd number of Ys — the
    # analytic finder checks exactly that, see DESIGN.md §6.)
    qc = real_amplitudes_ansatz(N_QUBITS, reps=1, seed=SEED)
    print(f"workload: {qc.name} — {N_QUBITS} qubits, {len(qc)} gates; "
          f"device limit {DEVICE_LIMIT} qubits")

    cuts = find_cuts(qc, max_fragment_qubits=DEVICE_LIMIT)
    pair = bipartition(qc, cuts)
    print(f"auto cut search: {cuts.num_cuts} cut(s) on wire(s) {cuts.wires}; "
          f"{pair.describe()}")

    golden = find_golden_bases_analytic(pair)
    print(f"golden bases found analytically: {golden}")
    assert all("Y" in bs for bs in golden.values()), "real ansatz must be Y-golden"

    truth = simulate_statevector(qc).probabilities()
    run = cut_and_run(
        qc, IdealBackend(), cuts=cuts, shots=SHOTS, golden="analytic", seed=SEED
    )
    tv = total_variation(run.probabilities, truth)

    parity = DiagonalObservable.parity(N_QUBITS)
    decision_exact = parity.expectation(truth)
    decision_cut = run.expectation(parity.diagonal)

    print()
    print(f"variants executed: {run.costs.num_variants} "
          f"(standard would need {3**cuts.num_cuts + 6**cuts.num_cuts})")
    print(f"TV(reconstruction, exact) = {tv:.4f}")
    print(f"parity decision function: exact {decision_exact:+.4f}  "
          f"cut {decision_cut:+.4f}")
    assert tv < 0.05 and abs(decision_cut - decision_exact) < 0.05
    print("\nOK: the QML ansatz was evaluated entirely on "
          f"{DEVICE_LIMIT}-qubit fragments with the Y basis neglected.")


if __name__ == "__main__":
    main()
