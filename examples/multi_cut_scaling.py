"""Multi-cut bipartitions and the 4^{K_r}·3^{K_g} cost scaling (paper §II-B).

The paper derives that with ``K_g`` golden and ``K_r`` regular cuts the
reconstruction handles ``4^{K_r} 3^{K_g}`` terms and the fragments need
``6^{K_r} 4^{K_g}`` downstream initialisations.  This example builds
circuits with K = 1..3 cuts whose cut wires are all Y-golden, marks an
increasing number of them as golden, and verifies both the cost table and
the exactness of every reduced reconstruction.

It then goes beyond the paper's bipartitions: a genuine **3-fragment
chain** (two cut groups, CutQC-style) is cut, executed through the
per-fragment cache pool, and reconstructed with the generalised einsum
contraction — exactly, with and without golden neglect per cut group.

Run:  python examples/multi_cut_scaling.py
"""

import numpy as np

from repro import (
    IdealBackend,
    bipartition,
    partition_chain,
    simulate_statevector,
)
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.core.pipeline import cut_and_run_chain
from repro.cutting.execution import exact_chain_data, exact_fragment_data
from repro.cutting.reconstruction import (
    reconstruct_chain_distribution,
    reconstruct_distribution,
)
from repro.harness.report import format_table
from repro.harness.scaling import (
    chain_cut_circuit,
    multi_cut_golden_circuit,
    run_scaling,
)


def main() -> None:
    print("verifying exactness of reduced reconstructions on a K=2 circuit...")
    qc, spec = multi_cut_golden_circuit(2, depth=2, seed=99)
    pair = bipartition(qc, spec)
    truth = simulate_statevector(qc).probabilities()
    for kg in range(3):
        golden = {k: "Y" for k in range(kg)}
        data = exact_fragment_data(
            pair,
            settings=reduced_setting_tuples(2, golden) if golden else None,
            inits=reduced_init_tuples(2, golden) if golden else None,
        )
        p = reconstruct_distribution(
            data, bases=reduced_bases(2, golden) if golden else None,
            postprocess="raw",
        )
        err = float(np.abs(p - truth).max())
        print(f"  K=2, {kg} golden cut(s): max |error| = {err:.2e}")
        assert err < 1e-9

    print("\ncost/time scaling grid (K = cuts, K_golden = neglected):")
    rows = run_scaling(max_cuts=3, depth=2, seed=5, repeats=3)
    print(format_table(rows))

    k3 = {r["K_golden"]: r for r in rows if r["K"] == 3}
    print(
        f"\nK=3: golden cuts shrink terms {k3[0]['rows(4^Kr*3^Kg)']} -> "
        f"{k3[3]['rows(4^Kr*3^Kg)']} and variants "
        f"{k3[0]['variants']} -> {k3[3]['variants']}"
    )

    print("\n--- 3-fragment chain (two cut groups) ---")
    qc, specs = chain_cut_circuit(
        3, cuts_per_group=1, fresh_per_fragment=2, depth=2, seed=21,
        real_blocks=True,
    )
    chain = partition_chain(qc, specs)
    print(f"{chain.describe()}  over {qc.num_qubits} qubits")
    truth = simulate_statevector(qc).probabilities()

    # exact fragment data through the per-fragment cache pool
    data = exact_chain_data(chain)
    p = reconstruct_chain_distribution(data, postprocess="raw")
    err = float(np.abs(p - truth).max())
    print(f"exact chain reconstruction: max |error| = {err:.2e}")
    assert err < 1e-9

    # neglect per cut group: both groups are Y-golden by construction
    res = cut_and_run_chain(
        qc, IdealBackend(exact=True), specs, shots=200_000,
        golden="known", golden_maps=[{0: "Y"}, {0: "Y"}],
        seed=7, postprocess="raw",
    )
    err = float(np.abs(res.probabilities - truth).max())
    full = cut_and_run_chain(
        qc, IdealBackend(exact=True), specs, shots=200_000, seed=7,
        postprocess="raw",
    )
    print(
        f"golden chain run: max |error| = {err:.2e}, "
        f"executions {full.total_executions} -> {res.total_executions}"
    )


if __name__ == "__main__":
    main()
