"""Multi-cut bipartitions and the 4^{K_r}·3^{K_g} cost scaling (paper §II-B).

The paper derives that with ``K_g`` golden and ``K_r`` regular cuts the
reconstruction handles ``4^{K_r} 3^{K_g}`` terms and the fragments need
``6^{K_r} 4^{K_g}`` downstream initialisations.  This example builds
circuits with K = 1..3 cuts whose cut wires are all Y-golden, marks an
increasing number of them as golden, and verifies both the cost table and
the exactness of every reduced reconstruction.

Run:  python examples/multi_cut_scaling.py
"""

import numpy as np

from repro import simulate_statevector, bipartition
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.cutting.execution import exact_fragment_data
from repro.cutting.reconstruction import reconstruct_distribution
from repro.harness.report import format_table
from repro.harness.scaling import multi_cut_golden_circuit, run_scaling


def main() -> None:
    print("verifying exactness of reduced reconstructions on a K=2 circuit...")
    qc, spec = multi_cut_golden_circuit(2, depth=2, seed=99)
    pair = bipartition(qc, spec)
    truth = simulate_statevector(qc).probabilities()
    for kg in range(3):
        golden = {k: "Y" for k in range(kg)}
        data = exact_fragment_data(
            pair,
            settings=reduced_setting_tuples(2, golden) if golden else None,
            inits=reduced_init_tuples(2, golden) if golden else None,
        )
        p = reconstruct_distribution(
            data, bases=reduced_bases(2, golden) if golden else None,
            postprocess="raw",
        )
        err = float(np.abs(p - truth).max())
        print(f"  K=2, {kg} golden cut(s): max |error| = {err:.2e}")
        assert err < 1e-9

    print("\ncost/time scaling grid (K = cuts, K_golden = neglected):")
    rows = run_scaling(max_cuts=3, depth=2, seed=5, repeats=3)
    print(format_table(rows))

    k3 = {r["K_golden"]: r for r in rows if r["K"] == 3}
    print(
        f"\nK=3: golden cuts shrink terms {k3[0]['rows(4^Kr*3^Kg)']} -> "
        f"{k3[3]['rows(4^Kr*3^Kg)']} and variants "
        f"{k3[0]['variants']} -> {k3[3]['variants']}"
    )


if __name__ == "__main__":
    main()
