"""Fragment-DAG cutting: dense-graph QAOA beyond trees (PR 9).

Chains and trees cover ansätze whose cut wires fan strictly outward, but
a dense interaction graph — a DQVA/QAOA MaxCut layer with a triangle in
it — forces the cut fragments into a genuine *DAG*: two different
upstream fragments prepare into the same downstream fragment (a joint
preparation node), and the fragment connectivity graph is cyclic as an
undirected graph, so no fragment tree exists for these specs.  Earlier
engines rejected exactly this shape ("the cut specs describe a DAG, not
a tree"); this example

1. builds a QAOA MaxCut layer on a 6-node graph containing the triangle
   ``0-1-2`` plus pendant spokes, cuts it into a **diamond** of four
   fragments (A feeds B and C, B and C jointly prepare D), and
   reconstructs the uncut distribution exactly;
2. shows the searched :class:`~repro.cutting.contraction.ContractionPlan`
   the reconstruction now runs on DAGs — and how much cheaper it is than
   the fixed leaves-to-root order the tree engine used;
3. runs the full sampled pipeline (``cut_and_run_tree`` with automatic
   plan search) and checks the measured total-variation error against
   the predicted ``tv_bound()``.

Run:  python examples/dqva_dag_cutting.py
"""

import numpy as np

from repro import IdealBackend, partition_tree, simulate_statevector
from repro.circuits.circuit import Circuit
from repro.core.pipeline import cut_and_run_tree
from repro.cutting.contraction import (
    dp_plan,
    fixed_plan,
    network_spec_for_tree,
)
from repro.cutting.cut import CutPoint, CutSpec
from repro.cutting.execution import exact_tree_data
from repro.cutting.reconstruction import reconstruct_tree_distribution
from repro.metrics.distances import total_variation

GAMMA, BETA = 0.7, 0.4


def zz(qc: Circuit, a: int, b: int, gamma: float) -> None:
    """One QAOA cost term ``exp(-i γ Z_a Z_b)`` (cx–rz–cx)."""
    qc.cx(a, b)
    qc.rz(2 * gamma, b)
    qc.cx(a, b)


def dense_qaoa() -> "tuple[Circuit, list[CutSpec]]":
    """A MaxCut layer on the triangle ``0-1-2`` with spokes 3, 4, 5.

    Cluster A owns the triangle's first two edges, clusters B and C the
    spokes, and cluster D closes the triangle with ``ZZ(1, 2)`` — a gate
    whose two wires arrive from *different* fragments.  Cutting wires 1
    and 2 twice each (A→B, A→C, B→D, C→D) yields a diamond fragment DAG.
    """
    qc = Circuit(6, name="dense_qaoa")
    for q in (0, 1, 2):
        qc.h(q)

    def boundary(wire: int) -> int:
        return max(i for i, inst in enumerate(qc) if wire in inst.qubits)

    # cluster A: triangle edges (0,1) and (0,2), mixer on its kept qubit
    zz(qc, 0, 1, GAMMA)
    cut_a_b = boundary(1)
    zz(qc, 0, 2, GAMMA)
    cut_a_c = boundary(2)
    qc.rx(2 * BETA, 0)
    # cluster B: spoke (1,3)
    qc.h(3)
    zz(qc, 1, 3, GAMMA)
    qc.rx(2 * BETA, 3)
    cut_b_d = boundary(1)
    # cluster C: spoke (2,4)
    qc.h(4)
    zz(qc, 2, 4, GAMMA)
    qc.rx(2 * BETA, 4)
    cut_c_d = boundary(2)
    # cluster D: the closing triangle edge (1,2) — wires from B *and* C —
    # plus spoke (2,5) and the remaining mixers
    zz(qc, 1, 2, GAMMA)
    qc.h(5)
    zz(qc, 2, 5, GAMMA)
    for q in (1, 2, 5):
        qc.rx(2 * BETA, q)
    specs = [
        CutSpec((CutPoint(1, cut_a_b),)),
        CutSpec((CutPoint(2, cut_a_c),)),
        CutSpec((CutPoint(1, cut_b_d),)),
        CutSpec((CutPoint(2, cut_c_d),)),
    ]
    return qc, specs


def main() -> None:
    qc, specs = dense_qaoa()
    print("cutting a 6-qubit dense-graph QAOA layer (triangle 0-1-2)...")
    tree = partition_tree(qc, specs)
    widths = [f.num_qubits for f in tree.fragments]
    print(f"  fragments: {tree.num_fragments}, widths {widths}")
    print(f"  is_tree: {tree.is_tree}  (a diamond: B and C jointly prepare D)")
    assert not tree.is_tree
    joint = [f.index for f in tree.fragments if f.num_parents > 1]
    print(f"  joint-preparation fragment(s): {joint}")
    assert joint, "the diamond must contain a joint-prep node"

    # exact reconstruction through the searched contraction plan
    truth = simulate_statevector(qc).probabilities()
    data = exact_tree_data(tree)
    probs = reconstruct_tree_distribution(data)
    err = np.abs(probs - truth).max()
    print(f"  exact planned reconstruction: max |Δp| = {err:.2e}")
    assert err < 1e-9

    # the plan search: fixed leaves-to-root vs optimal pairwise order
    spec = network_spec_for_tree(tree)
    naive, searched = fixed_plan(spec), dp_plan(spec)
    print(
        f"  contraction cost: fixed {naive.cost:.0f} FLOPs → "
        f"searched {searched.cost:.0f} FLOPs "
        f"({naive.cost / searched.cost:.1f}x cheaper)"
    )
    assert searched.cost <= naive.cost

    # full sampled pipeline with automatic plan search
    result = cut_and_run_tree(
        qc, IdealBackend(), specs, shots=4000, seed=17
    )
    tv = total_variation(np.asarray(result.probabilities), truth)
    print(
        f"  sampled pipeline (4000 shots/variant): TV = {tv:.4f}, "
        f"predicted bound {result.tv_bound():.4f}"
    )
    assert tv <= result.tv_bound()
    print("done: the DAG engine reconstructs what no tree cut could.")


if __name__ == "__main__":
    main()
